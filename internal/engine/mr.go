package engine

import (
	"fmt"
	"strings"

	"bestpeer/internal/mapreduce"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// MapReduce is the MapReduce-style engine mounted beside the native P2P
// engines (§5.4): mappers read directly from the BestPeer++ instances
// (each peer's subquery result is one input split), intermediate tuples
// shuffle once per level by the hash of the join key (symmetric hash
// join, Fig. 5), and job outputs land in the mounted DFS. Each join
// level is one job; grouping/aggregation adds a final job — the job
// count that drives the cost model's ϕ·(L−1) term.
type MapReduce struct {
	B         Backend
	Opts      Options
	User      string
	Timestamp uint64
	// Span is the query's parent span; split rounds and jobs open
	// children under it. Nil disables tracing.
	Span *telemetry.Span
}

// Execute runs the query as a chain of MapReduce jobs and charges it
// under the pay-as-you-go model.
func (e *MapReduce) Execute(stmt *sqldb.SelectStmt) (*QueryResult, error) {
	qr, err := e.execute(stmt)
	if err == nil {
		qr.chargePayGo(DefaultCostParams(e.B.Rates()))
	}
	return qr, err
}

func (e *MapReduce) execute(stmt *sqldb.SelectStmt) (*QueryResult, error) {
	cluster := e.B.MR()
	if cluster == nil {
		return nil, fmt.Errorf("engine: MapReduce engine requested but no cluster is mounted")
	}
	if err := e.Opts.Validate(); err != nil {
		return nil, err
	}
	if e.Timestamp == 0 {
		e.Timestamp = e.B.QueryTimestamp()
	}
	rates := e.B.Rates()
	accesses, cross, err := resolveAccess(e.B, stmt, e.Opts.FanoutWidth, e.Span)
	if err != nil {
		return nil, err
	}
	peers := allPeers(accesses)
	if err := e.B.Gate(peers); err != nil {
		return nil, err
	}
	qr := &QueryResult{Engine: "mapreduce", Peers: peers, IndexKind: worstIndexKind(accesses)}
	qr.Cost = rates.Overhead()

	decomp, aggregated, err := DecomposeAggregates(stmt, func(t string) *sqldb.Schema { return e.B.Schema(t) })
	if err != nil {
		return nil, err
	}

	// splitsFor pulls one table's partitions as input splits (the
	// mapper-side DB connector: local SQL push-down per peer, all
	// connectors reading concurrently like HadoopDB's mappers).
	splitsFor := func(a *tableAccess, sub *sqldb.SelectStmt) ([]mapreduce.Split, error) {
		sp := e.Span.StartChild("splits:"+a.ref.Table, telemetry.L("peers", fmt.Sprintf("%d", len(a.loc.Peers))))
		defer sp.End()
		req := SubQueryRequest{Stmt: sub, User: e.User, Timestamp: e.Timestamp, Trace: sp.Context(), StmtBytes: SubQueryBytes(sub)}
		results, err := FanOutOrdered(e.Opts.FanoutWidth, len(a.loc.Peers), e.Opts.DispatchOrder(a.loc.Peers), func(i int) (*sqldb.Result, error) {
			return e.B.SubQuery(a.loc.Peers[i], req)
		})
		if err != nil {
			sp.SetError(err)
			return nil, err
		}
		splits := make([]mapreduce.Split, 0, len(results))
		for i, res := range results {
			qr.SubQueries++
			qr.BytesScanned += res.Stats.BytesScanned
			qr.BytesFetched += res.Stats.BytesReturned
			qr.RowsScanned += res.Stats.RowsScanned
			splits = append(splits, mapreduce.Split{
				Source: a.loc.Peers[i],
				Rows:   res.Rows,
				Bytes:  res.Stats.BytesScanned,
			})
		}
		return splits, nil
	}

	// Single-table, no join.
	if len(accesses) == 1 {
		a := accesses[0]
		if aggregated {
			// One job: maps compute per-partition partials (pushed into
			// the local DB), reducers merge per group key.
			splits, err := splitsFor(a, decomp.Partial)
			if err != nil {
				return nil, err
			}
			return e.finishAggregate(qr, cluster, stmt, decomp, splits, 0)
		}
		// Map-only job (the HadoopDB Q1 shape): push selection and
		// projection down, concatenate outputs.
		sub := sqldb.BuildSubQuery(a.ref, a.columns, a.conjuncts)
		splits, err := splitsFor(a, sub)
		if err != nil {
			return nil, err
		}
		job := mapreduce.Job{Name: "select:" + a.ref.Table, Splits: splits, Output: "/query/select", Trace: e.Span.Context()}
		res, err := cluster.Run(job)
		if err != nil {
			return nil, err
		}
		qr.Cost = qr.Cost.Add(res.Cost)
		bindings := []sqldb.Binding{{Alias: a.ref.Alias, Schema: a.subSchema}}
		final, err := sqldb.ProjectRows(stmt, bindings, res.Rows)
		if err != nil {
			return nil, err
		}
		qr.Cost = qr.Cost.Add(rates.NetTransfer(res.OutputBytes))
		qr.Result = final
		return qr, nil
	}

	// Join chain: one symmetric hash-join job per level.
	leftBindings := []sqldb.Binding{{Alias: accesses[0].ref.Alias, Schema: accesses[0].subSchema}}
	leftSplits, err := splitsFor(accesses[0], sqldb.BuildSubQuery(accesses[0].ref, accesses[0].columns, accesses[0].conjuncts))
	if err != nil {
		return nil, err
	}
	leftRows := []sqlval.Row(nil) // nil while left side lives in splits
	pending := cross
	jobIndex := 0

	for i := 1; i < len(accesses); i++ {
		a := accesses[i]
		right := []sqldb.Binding{{Alias: a.ref.Alias, Schema: a.subSchema}}
		lkeys, rkeys, rest := sqldb.EquiJoinConds(pending, leftBindings, right)
		combined := append(append([]sqldb.Binding{}, leftBindings...), right...)
		var residual, still []sqldb.Expr
		for _, c := range rest {
			if sqldb.Resolvable(combined, c) {
				residual = append(residual, c)
			} else {
				still = append(still, c)
			}
		}
		rightSplits, err := splitsFor(a, sqldb.BuildSubQuery(a.ref, a.columns, a.conjuncts))
		if err != nil {
			return nil, err
		}

		var splits []mapreduce.Split
		if leftRows == nil {
			splits = tagSplits(leftSplits, "L")
		} else {
			splits = tagSplits(rowsToSplits(leftRows, cluster.Workers()), "L")
		}
		splits = append(splits, tagSplits(rightSplits, "R")...)

		lb, rb := leftBindings, right
		// Route keys compile once per job; the Map closure runs per row.
		lroute := compileRouteKey(lb, lkeys)
		rroute := compileRouteKey(rb, rkeys)
		job := mapreduce.Job{
			Name:   fmt.Sprintf("join%d:%s", jobIndex, a.ref.Table),
			Splits: splits,
			Trace:  e.Span.Context(),
			Map: func(src string, row sqlval.Row) ([]mapreduce.KV, error) {
				side, route := "L", lroute
				if strings.HasPrefix(src, "R|") {
					side, route = "R", rroute
				}
				key, err := route(row)
				if err != nil {
					return nil, err
				}
				tagged := append(row.Clone(), sqlval.Str(side))
				return []mapreduce.KV{{Key: key, Row: tagged}}, nil
			},
			Reduce: func(_ sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) {
				var ls, rs []sqlval.Row
				for _, r := range rows {
					side := r[len(r)-1].AsString()
					body := r[:len(r)-1]
					if side == "L" {
						ls = append(ls, body)
					} else {
						rs = append(rs, body)
					}
				}
				joined, cb, err := hashJoin(lb, ls, rb, rs, lkeys, rkeys)
				if err != nil {
					return nil, err
				}
				out, pend, err := applyResolvable(cb, joined, residual)
				if err != nil {
					return nil, err
				}
				if len(pend) > 0 {
					return nil, fmt.Errorf("engine: residual %s unresolvable in reduce", sqldb.AndAll(pend))
				}
				return out, nil
			},
			Output: fmt.Sprintf("/query/join%d", jobIndex),
		}
		res, err := cluster.Run(job)
		if err != nil {
			return nil, err
		}
		qr.Cost = qr.Cost.Add(res.Cost)
		leftRows = res.Rows
		leftBindings = combined
		pending = still
		jobIndex++
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("engine: unresolvable predicate %s", sqldb.AndAll(pending))
	}

	if aggregated {
		// Final aggregation job over the joined rows: maps emit
		// (group key, row); reducers compute per-group partials.
		splits := rowsToSplits(leftRows, cluster.Workers())
		lb := leftBindings
		route := compileRouteKey(lb, stmt.GroupBy)
		job := mapreduce.Job{
			Name:   "aggregate",
			Splits: splits,
			Trace:  e.Span.Context(),
			Map: func(_ string, row sqlval.Row) ([]mapreduce.KV, error) {
				key, err := route(row)
				if err != nil {
					return nil, err
				}
				return []mapreduce.KV{{Key: key, Row: row}}, nil
			},
			Reduce: func(_ sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) {
				res, err := sqldb.ProjectRows(decomp.Partial, lb, rows)
				if err != nil {
					return nil, err
				}
				return res.Rows, nil
			},
			Output: "/query/aggregate",
		}
		res, err := cluster.Run(job)
		if err != nil {
			return nil, err
		}
		qr.Cost = qr.Cost.Add(res.Cost)
		merged, err := sqldb.ProjectRows(decomp.Merge,
			[]sqldb.Binding{{Alias: "partial", Schema: decomp.PartialSchema}}, res.Rows)
		if err != nil {
			return nil, err
		}
		qr.Cost = qr.Cost.Add(rates.NetTransfer(res.OutputBytes))
		qr.Result = merged
		return qr, nil
	}

	final, err := sqldb.ProjectRows(stmt, leftBindings, leftRows)
	if err != nil {
		return nil, err
	}
	qr.Cost = qr.Cost.Add(rates.NetTransfer(bytesOf(leftRows)))
	qr.Result = final
	return qr, nil
}

// finishAggregate runs the merge of single-table aggregation: reducers
// fold the per-peer partial rows per group, the submitting peer applies
// the merge statement.
func (e *MapReduce) finishAggregate(qr *QueryResult, cluster *mapreduce.Cluster, stmt *sqldb.SelectStmt, decomp *Decomposition, splits []mapreduce.Split, jobIndex int) (*QueryResult, error) {
	rates := e.B.Rates()
	pb := []sqldb.Binding{{Alias: "partial", Schema: decomp.PartialSchema}}
	nGroup := len(stmt.GroupBy)
	job := mapreduce.Job{
		Name:   fmt.Sprintf("agg%d", jobIndex),
		Splits: splits,
		Trace:  e.Span.Context(),
		Map: func(_ string, row sqlval.Row) ([]mapreduce.KV, error) {
			// Partial rows start with the group columns g0..g(n-1).
			key := groupKeyOf(row[:nGroup])
			return []mapreduce.KV{{Key: key, Row: row}}, nil
		},
		Reduce: func(_ sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) {
			return []sqlval.Row{decomp.MergePartialRows(rows)}, nil
		},
		Output: "/query/agg",
	}
	res, err := cluster.Run(job)
	if err != nil {
		return nil, err
	}
	qr.Cost = qr.Cost.Add(res.Cost)
	merged, err := sqldb.ProjectRows(decomp.Merge, pb, res.Rows)
	if err != nil {
		return nil, err
	}
	qr.Cost = qr.Cost.Add(rates.NetTransfer(res.OutputBytes))
	qr.Result = merged
	return qr, nil
}

// compileRouteKey compiles the shuffle-key function for one job's key
// expressions: single keys route by value, multi-keys by a
// separator-joined rendering (collisions are harmless — reducers
// re-verify equality). Column offsets resolve once here instead of per
// mapped row.
func compileRouteKey(b []sqldb.Binding, keys []sqldb.Expr) func(sqlval.Row) (sqlval.Value, error) {
	if len(keys) == 0 {
		return func(sqlval.Row) (sqlval.Value, error) { return sqlval.Null(), nil }
	}
	if len(keys) == 1 {
		return sqldb.CompileExprOver(b, keys[0])
	}
	evals := make([]sqldb.CompiledExpr, len(keys))
	for i, k := range keys {
		evals[i] = sqldb.CompileExprOver(b, k)
	}
	return func(row sqlval.Row) (sqlval.Value, error) {
		var sb strings.Builder
		for i, eval := range evals {
			v, err := eval(row)
			if err != nil {
				return sqlval.Null(), err
			}
			if i > 0 {
				sb.WriteByte(0x1f)
			}
			sb.WriteString(v.String())
		}
		return sqlval.Str(sb.String()), nil
	}
}

// groupKeyOf renders leading group columns into one routing key.
func groupKeyOf(vals sqlval.Row) sqlval.Value {
	if len(vals) == 0 {
		return sqlval.Null()
	}
	if len(vals) == 1 {
		return vals[0]
	}
	var sb strings.Builder
	for i, v := range vals {
		if i > 0 {
			sb.WriteByte(0x1f)
		}
		sb.WriteString(v.String())
	}
	return sqlval.Str(sb.String())
}

// tagSplits prefixes split sources with a side tag consumed by the join
// mapper.
func tagSplits(splits []mapreduce.Split, tag string) []mapreduce.Split {
	out := make([]mapreduce.Split, len(splits))
	for i, s := range splits {
		s.Source = tag + "|" + s.Source
		out[i] = s
	}
	return out
}

// rowsToSplits partitions materialized rows into n splits (reading a
// previous job's DFS output as the next job's input).
func rowsToSplits(rows []sqlval.Row, n int) []mapreduce.Split {
	if n < 1 {
		n = 1
	}
	out := make([]mapreduce.Split, n)
	for i := range out {
		out[i].Source = fmt.Sprintf("dfs-part-%d", i)
	}
	for i, row := range rows {
		p := i % n
		out[p].Rows = append(out[p].Rows, row)
		out[p].Bytes += int64(row.EncodedSize())
	}
	// Drop empty splits to avoid zero-work map tasks.
	var filtered []mapreduce.Split
	for _, s := range out {
		if len(s.Rows) > 0 {
			filtered = append(filtered, s)
		}
	}
	if filtered == nil {
		filtered = out[:1]
	}
	return filtered
}
