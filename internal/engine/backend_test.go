package engine

import (
	"fmt"
	"sort"
	"testing"

	"bestpeer/internal/dfs"
	"bestpeer/internal/indexer"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

// testBackend is an in-memory Backend for engine tests: per-peer
// databases, table-index-style location, and an optional MR cluster.
type testBackend struct {
	self    string
	dbs     map[string]*sqldb.DB
	schemas map[string]*sqldb.Schema
	rates   vtime.Rates
	mr      *mapreduce.Cluster
	offline map[string]bool
}

func (b *testBackend) Self() string { return b.self }

func (b *testBackend) Schema(table string) *sqldb.Schema { return b.schemas[table] }

func (b *testBackend) Locate(table string, _ []sqldb.Expr, _ []string) (indexer.Location, error) {
	loc := indexer.Location{Kind: indexer.KindTable}
	var peers []string
	for id := range b.dbs {
		peers = append(peers, id)
	}
	sort.Strings(peers)
	for _, id := range peers {
		t := b.dbs[id].Table(table)
		if t == nil || t.NumRows() == 0 {
			continue
		}
		loc.Peers = append(loc.Peers, id)
		loc.Entries = append(loc.Entries, indexer.TableEntry{
			Table: table, Peer: id, Rows: int64(t.NumRows()), Bytes: t.DataBytes(),
		})
	}
	if len(loc.Peers) == 0 {
		loc.Kind = indexer.KindNone
	}
	return loc, nil
}

func (b *testBackend) Gate(peers []string) error {
	for _, p := range peers {
		if b.offline[p] {
			return fmt.Errorf("engine test: peer %s offline", p)
		}
	}
	return nil
}

func (b *testBackend) SubQuery(peer string, req SubQueryRequest) (*sqldb.Result, error) {
	db, ok := b.dbs[peer]
	if !ok {
		return nil, fmt.Errorf("engine test: unknown peer %s", peer)
	}
	if b.offline[peer] {
		return nil, fmt.Errorf("engine test: peer %s offline", peer)
	}
	res, err := db.ExecStmt(req.Stmt)
	if err != nil {
		return nil, err
	}
	ApplyBloomToResult(res, req.BloomColumn, req.Bloom)
	return res, nil
}

func (b *testBackend) JoinAt(peer string, task JoinTask) (*sqldb.Result, error) {
	local, err := b.SubQuery(peer, task.Local)
	if err != nil {
		return nil, err
	}
	res, err := ExecuteJoinTask(task, local.Rows)
	if err != nil {
		return nil, err
	}
	res.Stats.BytesScanned = local.Stats.BytesScanned
	res.Stats.RowsScanned = local.Stats.RowsScanned
	for _, r := range res.Rows {
		res.Stats.BytesReturned += int64(r.EncodedSize())
	}
	return res, nil
}

func (b *testBackend) MR() *mapreduce.Cluster { return b.mr }

func (b *testBackend) QueryTimestamp() uint64 { return 0 }

func (b *testBackend) Rates() vtime.Rates { return b.rates }

// newTPCHBackend builds peers each holding a TPC-H partition, plus an
// oracle DB merging all partitions for expected results.
func newTPCHBackend(t *testing.T, peers int, sf float64) (*testBackend, *sqldb.DB) {
	t.Helper()
	b := &testBackend{
		self:    "peer-00",
		dbs:     make(map[string]*sqldb.DB),
		schemas: make(map[string]*sqldb.Schema),
		rates:   vtime.DefaultRates(),
		offline: make(map[string]bool),
	}
	for _, s := range tpch.Schemas(false) {
		b.schemas[s.Table] = s
	}
	oracle := sqldb.NewDB()
	var dns []string
	for i := 0; i < peers; i++ {
		id := fmt.Sprintf("peer-%02d", i)
		dns = append(dns, id)
		db := sqldb.NewDB()
		sc := tpch.Scale{ScaleFactor: sf, Peer: i, NumPeers: peers, NationKey: -1}
		if err := tpch.Generate(db, sc); err != nil {
			t.Fatal(err)
		}
		if err := tpch.Generate(oracle, sc); err != nil {
			t.Fatal(err)
		}
		b.dbs[id] = db
	}
	fs, err := dfs.New(dfs.Config{BlockSizeBytes: 1 << 20, Replication: 2, Datanodes: dns})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := mapreduce.NewCluster(fs, peers, b.rates)
	if err != nil {
		t.Fatal(err)
	}
	b.mr = cluster
	return b, oracle
}

// canonical renders a result as sorted row strings for order-insensitive
// comparison, normalizing numeric formatting.
func canonical(res *sqldb.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		s := ""
		for i, v := range row {
			if i > 0 {
				s += "|"
			}
			if v.Numeric() || v.Kind() == sqlval.KindDate {
				s += fmt.Sprintf("%.4f", v.AsFloat())
			} else {
				s += v.String()
			}
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func assertSameResult(t *testing.T, name string, got, want *sqldb.Result) {
	t.Helper()
	g, w := canonical(got), canonical(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d", name, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d differs:\n got  %s\n want %s", name, i, g[i], w[i])
		}
	}
}
