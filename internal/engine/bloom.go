package engine

import (
	"errors"
	"math"

	"bestpeer/internal/sqlval"
)

// Bloom is the bloom filter used by the bloom-join optimization (§5.2:
// "for equi-join queries, the system employs bloom join algorithm to
// reduce the volume of data transmitted through the network"). The
// query submitting peer builds a filter over the join keys it already
// holds and ships it with the subquery; the remote peer drops tuples
// whose keys cannot match before sending them back.
type Bloom struct {
	bits   []uint64
	k      int
	mBits  uint64
	adds   int
	hashes [8]uint64 // salt per hash function
}

// NewBloom sizes a filter for n expected keys at ~1% false positives.
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	m := uint64(math.Ceil(float64(n) * 9.6)) // bits per key for p≈0.01
	if m < 64 {
		m = 64
	}
	words := (m + 63) / 64
	b := &Bloom{bits: make([]uint64, words), k: 7, mBits: words * 64}
	for i := range b.hashes {
		b.hashes[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return b
}

func (b *Bloom) positions(v sqlval.Value) []uint64 {
	h := v.Hash()
	out := make([]uint64, b.k)
	for i := 0; i < b.k; i++ {
		x := h ^ b.hashes[i]
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		out[i] = x % b.mBits
	}
	return out
}

// Add inserts a key.
func (b *Bloom) Add(v sqlval.Value) {
	for _, p := range b.positions(v) {
		b.bits[p/64] |= 1 << (p % 64)
	}
	b.adds++
}

// MayContain reports whether the key could be present (false = certainly
// absent).
func (b *Bloom) MayContain(v sqlval.Value) bool {
	for _, p := range b.positions(v) {
		if b.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of added keys.
func (b *Bloom) Len() int { return b.adds }

// SizeBytes returns the filter's transfer size for cost accounting.
func (b *Bloom) SizeBytes() int64 { return int64(len(b.bits) * 8) }

// GobEncode lets filters ship to data owners over the TCP transport.
func (b *Bloom) GobEncode() ([]byte, error) {
	out := make([]byte, 0, 8*(len(b.bits)+len(b.hashes))+24)
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			out = append(out, byte(v>>(8*i)))
		}
	}
	putU64(uint64(len(b.bits)))
	for _, w := range b.bits {
		putU64(w)
	}
	putU64(uint64(b.k))
	putU64(b.mBits)
	putU64(uint64(b.adds))
	for _, h := range b.hashes {
		putU64(h)
	}
	return out, nil
}

// GobDecode is the inverse of GobEncode.
func (b *Bloom) GobDecode(data []byte) error {
	if len(data) < 8 {
		return errShortBloom
	}
	pos := 0
	getU64 := func() uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(data[pos+i]) << (8 * i)
		}
		pos += 8
		return v
	}
	n := int(getU64())
	if len(data) < 8*(n+4+len(b.hashes)) {
		return errShortBloom
	}
	b.bits = make([]uint64, n)
	for i := range b.bits {
		b.bits[i] = getU64()
	}
	b.k = int(getU64())
	b.mBits = getU64()
	b.adds = int(getU64())
	for i := range b.hashes {
		b.hashes[i] = getU64()
	}
	return nil
}

var errShortBloom = errors.New("engine: short bloom filter payload")
