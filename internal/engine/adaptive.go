package engine

import (
	"fmt"
	"math"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/telemetry"
)

// Adaptive is the pay-as-you-go adaptive query processor (§5.5,
// Algorithm 2): when a query arrives, the planner retrieves index and
// statistics information, constructs the processing graph, predicts the
// costs of both the P2P engine (Eq. 8) and the MapReduce engine
// (Eq. 11), and executes the cheaper plan. A feedback loop refines the
// selectivity parameters from measured executions.
type Adaptive struct {
	B      Backend
	Opts   Options
	User   string
	Params CostParams
	FB     *Feedback
	// Selectivity estimates the fraction of a table satisfying its
	// per-table conjuncts, typically backed by the published MHIST
	// histograms (§5.1). Nil means no statistics (selectivity 1).
	Selectivity func(table string, conjuncts []sqldb.Expr) float64
	// Span is the query's parent span; the plan phase and the chosen
	// engine's rounds open children under it. Nil disables tracing.
	Span *telemetry.Span
}

// NewAdaptive builds an adaptive engine with default parameters derived
// from the backend's rates.
func NewAdaptive(b Backend, opts Options, user string) *Adaptive {
	return &Adaptive{
		B:      b,
		Opts:   opts,
		User:   user,
		Params: DefaultCostParams(b.Rates()),
		FB:     NewFeedback(),
	}
}

// Plan constructs the processing graph and predicts both engines'
// costs. The returned engine name is "parallel" or "mapreduce"
// ("parallel" also covers the degenerate no-join case).
type Plan struct {
	Engine string
	CBP    float64
	CMR    float64
	Levels []Level
}

// Plan estimates both strategies for the statement.
func (e *Adaptive) Plan(stmt *sqldb.SelectStmt) (*Plan, error) {
	if err := e.Opts.Validate(); err != nil {
		return nil, err
	}
	sp := e.Span.StartChild("plan")
	defer sp.End()
	accesses, _, err := resolveAccess(e.B, stmt, e.Opts.FanoutWidth, sp)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	levels := e.levelsOf(accesses, stmt)
	p := &Plan{Levels: levels}
	if len(levels) == 0 || e.B.MR() == nil {
		p.Engine = "parallel"
		sp.SetAttr("engine", p.Engine)
		return p, nil
	}
	p.CBP = e.Params.CBP(levels)
	p.CMR = e.Params.CMR(levels)
	if p.CMR < p.CBP {
		p.Engine = "mapreduce"
	} else {
		p.Engine = "parallel"
	}
	sp.SetAttr("engine", p.Engine)
	sp.SetAttr("cbp", fmt.Sprintf("%.0f", p.CBP))
	sp.SetAttr("cmr", fmt.Sprintf("%.0f", p.CMR))
	return p, nil
}

// levelsOf builds the processing graph's join levels (Definition 3):
// one level per join in FROM order after the first table, plus one
// level for GROUP BY when present (f(y) = 1). Sizes come from the table
// index entries' published partition statistics; selectivities come
// from the feedback store with a 1/S(T_i) default (foreign-key joins
// keep the intermediate result near the probe side's size).
func (e *Adaptive) levelsOf(accesses []*tableAccess, stmt *sqldb.SelectStmt) []Level {
	if len(accesses) < 2 {
		return nil
	}
	var levels []Level
	// The first table seeds s(L+1): fold it in as a virtual leaf level
	// with t = 1 (it ships once to wherever processing happens).
	seed := tableSize(accesses[0]) * e.selectivity(accesses[0])
	levels = append(levels, Level{
		Table:      accesses[0].ref.Table,
		SizeBytes:  seed,
		Partitions: 1,
		G:          e.FB.Lookup(accesses[0].ref.Table, 1),
	})
	for _, a := range accesses[1:] {
		size := tableSize(a) * e.selectivity(a)
		def := 1.0
		if size > 0 {
			def = 1 / size
		}
		levels = append(levels, Level{
			Table:      a.ref.Table,
			SizeBytes:  size,
			Partitions: maxInt(len(a.loc.Peers), 1),
			G:          e.FB.Lookup(a.ref.Table, def),
		})
	}
	if len(stmt.GroupBy) > 0 {
		// The GROUP BY level re-partitions the final intermediate result.
		levels = append(levels, Level{
			Table:      "(group by)",
			SizeBytes:  1,
			Partitions: maxInt(len(accesses[len(accesses)-1].loc.Peers), 1),
			G:          1,
		})
	}
	return levels
}

// selectivity applies the statistics module's predicate selectivity to
// a table access.
func (e *Adaptive) selectivity(a *tableAccess) float64 {
	if e.Selectivity == nil {
		return 1
	}
	sel := e.Selectivity(a.ref.Table, a.conjuncts)
	if sel <= 0 || sel > 1 {
		return 1
	}
	return sel
}

// tableSize sums the published partition sizes of a table access.
func tableSize(a *tableAccess) float64 {
	var total float64
	for _, e := range a.loc.Entries {
		total += float64(e.Bytes)
	}
	if total == 0 {
		total = 1
	}
	return total
}

// Execute plans and runs the query with the chosen engine, then feeds
// the measured selectivity back into the statistics module.
func (e *Adaptive) Execute(stmt *sqldb.SelectStmt) (*QueryResult, error) {
	plan, err := e.Plan(stmt)
	if err != nil {
		return nil, err
	}
	telemetry.Default.Counter("engine_adaptive_choices_total", telemetry.L("engine", plan.Engine)).Inc()
	var qr *QueryResult
	switch plan.Engine {
	case "mapreduce":
		mr := &MapReduce{B: e.B, Opts: e.Opts, User: e.User, Span: e.Span}
		qr, err = mr.Execute(stmt)
	default:
		// The P2P branch runs the native fetch-and-process strategy —
		// the "original P2P strategy" the paper's adaptive evaluation
		// switches against MapReduce (§6.1.11). The replicated-join
		// parallel engine (§5.3) remains available as an explicit
		// strategy.
		basic := &Basic{B: e.B, Opts: e.Opts, User: e.User, Span: e.Span}
		qr, err = basic.Execute(stmt)
		if qr != nil {
			qr.Engine = "p2p"
		}
	}
	if err != nil {
		return nil, err
	}
	qr.Engine = "adaptive(" + qr.Engine + ")"
	e.recordFeedback(plan, qr)
	return qr, nil
}

// recordFeedback updates per-table selectivities from the measured
// execution: the observed end-to-end reduction is attributed uniformly
// to the join levels (the paper's statistics module adjusts parameters
// "based on recently measured values").
func (e *Adaptive) recordFeedback(plan *Plan, qr *QueryResult) {
	if len(plan.Levels) < 2 || qr.Result == nil {
		return
	}
	var product float64 = 1
	joins := 0
	for _, lv := range plan.Levels {
		if lv.Table == "(group by)" {
			continue
		}
		product *= lv.SizeBytes
		joins++
	}
	if product <= 0 || joins == 0 {
		return
	}
	out := float64(bytesOf(qr.Result.Rows))
	if out <= 0 {
		out = 1
	}
	ratio := out / product
	g := math.Pow(ratio, 1/float64(joins))
	for _, lv := range plan.Levels {
		if lv.Table == "(group by)" {
			continue
		}
		e.FB.Record(lv.Table, g)
	}
}
