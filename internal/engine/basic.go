package engine

import (
	"fmt"

	"bestpeer/internal/indexer"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/vtime"
)

// Basic is the fetch-and-process strategy (§5.2): decompose the query
// into single-table subqueries, push them to the data owner peers found
// through the indexes, pull the intermediate results into MemTables at
// the query submitting peer, and finish the joins and aggregation
// there. It carries the paper's three optimizations: index caching (in
// the locator), bloom joins for equi-joins, and the single-peer
// shortcut used by the throughput benchmark.
type Basic struct {
	B    Backend
	Opts Options
	User string
	// Timestamp is the query's logical submission time; zero means
	// "stamp at Execute from the backend's clock". One engine value
	// serves one query (Definition 2: resubmission takes a fresh stamp).
	Timestamp uint64
	// Span is the query's parent span (minted at Peer.Query); rounds
	// open children under it. Nil disables tracing.
	Span *telemetry.Span
}

// fetchRound pulls one table's rows from all its data owner peers and
// charges the round's cost: remote scans run in parallel; the returned
// streams serialize into the submitting peer's inbound link (push-based
// transfer, §6.1.7).
type fetchRound struct {
	rows        []sqlval.Row
	cost        vtime.Cost
	fetched     int64
	scanned     int64
	rowsScanned int64
	subCalls    int
	peerCount   int
}

func (e *Basic) fetch(a *tableAccess, bloomCol string, bloom *Bloom) (*fetchRound, error) {
	sp := e.Span.StartChild("fetch:"+a.ref.Table, telemetry.L("peers", fmt.Sprintf("%d", len(a.loc.Peers))))
	defer sp.End()
	stmt := sqldb.BuildSubQuery(a.ref, a.columns, a.conjuncts)
	round := &fetchRound{peerCount: len(a.loc.Peers)}
	rates := e.B.Rates()
	req := SubQueryRequest{Stmt: stmt, User: e.User, Timestamp: e.Timestamp, Trace: sp.Context(), StmtBytes: SubQueryBytes(stmt)}
	if bloom != nil && !e.Opts.DisableBloomJoin {
		req.BloomColumn = bloomCol
		req.Bloom = bloom
	}
	results, err := FanOutOrdered(e.Opts.FanoutWidth, len(a.loc.Peers), e.Opts.DispatchOrder(a.loc.Peers), func(i int) (*sqldb.Result, error) {
		return e.B.SubQuery(a.loc.Peers[i], req)
	})
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	var total int
	for _, res := range results {
		total += len(res.Rows)
	}
	round.rows = make([]sqlval.Row, 0, total)
	var remote vtime.Cost
	var inboundBytes int64
	for _, res := range results {
		if req.Bloom != nil {
			// The filter itself ships to the peer.
			round.cost = round.cost.Add(rates.NetTransfer(req.Bloom.SizeBytes()))
		}
		round.rows = append(round.rows, res.Rows...)
		round.fetched += res.Stats.BytesReturned
		round.scanned += res.Stats.BytesScanned
		round.rowsScanned += res.Stats.RowsScanned
		round.subCalls++
		remote = vtime.Par(remote, rates.DiskRead(res.Stats.BytesScanned).Add(rates.CPUWork(res.Stats.BytesScanned)))
		inboundBytes += res.Stats.BytesReturned
	}
	round.cost = round.cost.Add(remote)
	round.cost = round.cost.Add(rates.NetMsgs(round.peerCount)).Add(rates.NetTransfer(inboundBytes))
	if e.Opts.SimulatePullTransfer {
		round.cost = round.cost.Add(rates.PullDelay(1))
	}
	sp.SetVTime(round.cost.Total())
	sp.SetAttr("rows", fmt.Sprintf("%d", len(round.rows)))
	return round, nil
}

// Execute runs the query and charges it under the pay-as-you-go model.
func (e *Basic) Execute(stmt *sqldb.SelectStmt) (*QueryResult, error) {
	qr, err := e.execute(stmt)
	if err == nil {
		qr.chargePayGo(DefaultCostParams(e.B.Rates()))
	}
	return qr, err
}

func (e *Basic) execute(stmt *sqldb.SelectStmt) (*QueryResult, error) {
	if err := e.Opts.Validate(); err != nil {
		return nil, err
	}
	if e.Timestamp == 0 {
		e.Timestamp = e.B.QueryTimestamp()
	}
	rates := e.B.Rates()
	accesses, cross, err := resolveAccess(e.B, stmt, e.Opts.FanoutWidth, e.Span)
	if err != nil {
		return nil, err
	}
	peers := allPeers(accesses)
	if err := e.B.Gate(peers); err != nil {
		return nil, err
	}
	qr := &QueryResult{Engine: "basic", Peers: peers, IndexKind: worstIndexKind(accesses)}
	qr.Cost = rates.Overhead()
	var indexHops int
	for _, a := range accesses {
		indexHops += a.loc.Hops
	}
	qr.Cost = qr.Cost.Add(rates.NetMsgs(indexHops))

	if len(peers) == 0 {
		res, err := sqldb.ProjectRows(stmt, bindingsOf(accesses), nil)
		if err != nil {
			return nil, err
		}
		qr.Result = res
		return qr, nil
	}

	// Single-peer optimization: ship the whole SQL to the one peer that
	// has everything and skip the final processing phase (§6.2.3).
	if peer, ok := singleCommonPeer(accesses); ok && !e.Opts.DisableSinglePeer {
		sp := e.Span.StartChild("single-peer", telemetry.L("peer", peer))
		res, err := e.B.SubQuery(peer, SubQueryRequest{Stmt: stmt, User: e.User, Timestamp: e.Timestamp, Trace: sp.Context(), StmtBytes: SubQueryBytes(stmt)})
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		qr.Engine = "single-peer"
		qr.Result = res
		qr.SubQueries = 1
		qr.BytesFetched = res.Stats.BytesReturned
		qr.BytesScanned = res.Stats.BytesScanned
		qr.RowsScanned = res.Stats.RowsScanned
		qr.Cost = qr.Cost.
			Add(rates.DiskRead(res.Stats.BytesScanned)).
			Add(rates.CPUWork(res.Stats.BytesScanned)).
			Add(rates.NetTransfer(res.Stats.BytesReturned))
		sp.SetVTime(qr.Cost.Total())
		sp.End()
		return qr, nil
	}

	// Single-table aggregates: two-phase aggregation (partials at the
	// data owners, merge at the submitting peer).
	if len(accesses) == 1 {
		a := accesses[0]
		if d, ok, err := DecomposeAggregates(stmt, func(t string) *sqldb.Schema { return e.B.Schema(t) }); err != nil {
			return nil, err
		} else if ok {
			sp := e.Span.StartChild("partial-agg:"+a.ref.Table, telemetry.L("peers", fmt.Sprintf("%d", len(a.loc.Peers))))
			req := SubQueryRequest{Stmt: d.Partial, User: e.User, Timestamp: e.Timestamp, Trace: sp.Context(), StmtBytes: SubQueryBytes(d.Partial)}
			results, err := FanOutOrdered(e.Opts.FanoutWidth, len(a.loc.Peers), e.Opts.DispatchOrder(a.loc.Peers), func(i int) (*sqldb.Result, error) {
				return e.B.SubQuery(a.loc.Peers[i], req)
			})
			if err != nil {
				sp.SetError(err)
				sp.End()
				return nil, err
			}
			var partialRows []sqlval.Row
			var remote vtime.Cost
			var inbound int64
			for _, res := range results {
				partialRows = append(partialRows, res.Rows...)
				qr.SubQueries++
				qr.BytesFetched += res.Stats.BytesReturned
				qr.BytesScanned += res.Stats.BytesScanned
				qr.RowsScanned += res.Stats.RowsScanned
				remote = vtime.Par(remote, rates.DiskRead(res.Stats.BytesScanned).Add(rates.CPUWork(res.Stats.BytesScanned)))
				inbound += res.Stats.BytesReturned
			}
			qr.Cost = qr.Cost.Add(remote).Add(rates.NetMsgs(len(a.loc.Peers))).Add(rates.NetTransfer(inbound))
			if e.Opts.SimulatePullTransfer {
				qr.Cost = qr.Cost.Add(rates.PullDelay(1))
			}
			sp.SetVTime(qr.Cost.Total())
			sp.End()
			merged, err := sqldb.ProjectRows(d.Merge, []sqldb.Binding{{Alias: "partial", Schema: d.PartialSchema}}, partialRows)
			if err != nil {
				return nil, err
			}
			qr.Cost = qr.Cost.Add(rates.CPUWork(qr.BytesFetched))
			qr.Result = merged
			return qr, nil
		}
	}

	// General case: fetch each table in FROM order, joining left-deep at
	// the submitting peer (MemTables + bulk insert in the paper; here the
	// fetched rows are held and joined in memory the same way).
	cur := []sqldb.Binding{{Alias: accesses[0].ref.Alias, Schema: accesses[0].subSchema}}
	round, err := e.fetch(accesses[0], "", nil)
	if err != nil {
		return nil, err
	}
	rows := round.rows
	qr.addRound(round)
	pending := cross
	// rowsBytes caches bytesOf(rows), measured once per working set, so
	// the per-level and final CPU charges don't re-encode the same rows.
	var rowsBytes int64

	for i := 1; i < len(accesses); i++ {
		a := accesses[i]
		right := []sqldb.Binding{{Alias: a.ref.Alias, Schema: a.subSchema}}
		lkeys, rkeys, rest := sqldb.EquiJoinConds(pending, cur, right)

		// Bloom join: hash the left side's join key and let the remote
		// peers pre-filter (single-column keys only).
		var bloom *Bloom
		var bloomCol string
		if len(lkeys) == 1 && !e.Opts.DisableBloomJoin {
			if ref, ok := rkeys[0].(*sqldb.ColumnRef); ok {
				bloom = NewBloom(len(rows))
				keyOf := sqldb.CompileExprOver(cur, lkeys[0])
				for _, row := range rows {
					v, err := keyOf(row)
					if err != nil {
						return nil, err
					}
					bloom.Add(v)
				}
				bloomCol = ref.Column
			}
		}
		round, err := e.fetch(a, bloomCol, bloom)
		if err != nil {
			return nil, err
		}
		qr.addRound(round)

		joined, next, err := hashJoin(cur, rows, right, round.rows, lkeys, rkeys)
		if err != nil {
			return nil, err
		}
		// Apply newly resolvable conditions.
		rows, pending, err = applyResolvable(next, joined, rest)
		if err != nil {
			return nil, err
		}
		cur = next
		rowsBytes = bytesOf(rows)
		// Final processing happens on the submitting peer's single node.
		qr.Cost = qr.Cost.Add(rates.CPUWork(rowsBytes))
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("engine: unresolvable predicate %s", sqldb.AndAll(pending))
	}
	if len(accesses) == 1 {
		rowsBytes = bytesOf(rows) // no join level measured the seed
	}

	res, err := sqldb.ProjectRows(stmt, cur, rows)
	if err != nil {
		return nil, err
	}
	qr.Cost = qr.Cost.Add(rates.CPUWork(rowsBytes))
	qr.Result = res
	return qr, nil
}

func (qr *QueryResult) addRound(r *fetchRound) {
	qr.Cost = qr.Cost.Add(r.cost)
	qr.BytesFetched += r.fetched
	qr.BytesScanned += r.scanned
	qr.RowsScanned += r.rowsScanned
	qr.SubQueries += r.subCalls
}

// bindingsOf builds the full-subschema binding list of the FROM clause.
func bindingsOf(accesses []*tableAccess) []sqldb.Binding {
	out := make([]sqldb.Binding, len(accesses))
	for i, a := range accesses {
		out[i] = sqldb.Binding{Alias: a.ref.Alias, Schema: a.subSchema}
	}
	return out
}

// worstIndexKind reports the least selective index kind used across the
// FROM tables (range > column > table).
func worstIndexKind(accesses []*tableAccess) indexer.IndexKind {
	kind := indexer.KindRange
	rank := map[indexer.IndexKind]int{
		indexer.KindRange: 0, indexer.KindColumn: 1, indexer.KindTable: 2, indexer.KindNone: 3,
	}
	for _, a := range accesses {
		if rank[a.loc.Kind] > rank[kind] {
			kind = a.loc.Kind
		}
	}
	return kind
}

// hashJoin joins left rows with right rows on the key expressions,
// producing combined rows (left columns then right columns) and the
// combined binding list. Empty keys produce the cartesian product.
func hashJoin(lb []sqldb.Binding, lrows []sqlval.Row, rb []sqldb.Binding, rrows []sqlval.Row, lkeys, rkeys []sqldb.Expr) ([]sqlval.Row, []sqldb.Binding, error) {
	next := append(append([]sqldb.Binding{}, lb...), rb...)
	if len(lkeys) == 0 {
		out := make([]sqlval.Row, 0, len(lrows)*len(rrows))
		for _, l := range lrows {
			for _, r := range rrows {
				out = append(out, combinedRow(l, r))
			}
		}
		return out, next, nil
	}
	// Equi-joins here are foreign-key shaped (TPC-H), so the output is
	// near the probe side's cardinality; size the slice accordingly.
	out := make([]sqlval.Row, 0, len(lrows))
	build := make(map[uint64][]sqlval.Row, len(rrows))

	// Fast path: when every key is a bare column reference, resolve the
	// offsets once and hash/compare each side's key columns in a tight
	// loop over the rows — no closure dispatch, no per-key error path.
	loffs, lok := sqldb.JoinKeyOffsets(lb, lkeys)
	roffs, rok := sqldb.JoinKeyOffsets(rb, rkeys)
	if lok && rok {
		for _, r := range rrows {
			h := sqldb.HashKeyOffsets(r, roffs)
			build[h] = append(build[h], r)
		}
		for _, l := range lrows {
			h := sqldb.HashKeyOffsets(l, loffs)
		probeFast:
			for _, r := range build[h] {
				for i := range loffs {
					lv, rv := l[loffs[i]], r[roffs[i]]
					if lv.IsNull() || rv.IsNull() || !sqlval.Equal(lv, rv) {
						continue probeFast
					}
				}
				out = append(out, combinedRow(l, r))
			}
		}
		return out, next, nil
	}

	rhash, revals := sqldb.CompileJoinKey(rb, rkeys)
	lhash, levals := sqldb.CompileJoinKey(lb, lkeys)
	for _, r := range rrows {
		h, err := rhash(r)
		if err != nil {
			return nil, nil, err
		}
		build[h] = append(build[h], r)
	}
	for _, l := range lrows {
		h, err := lhash(l)
		if err != nil {
			return nil, nil, err
		}
	probe:
		for _, r := range build[h] {
			for i := range levals {
				lv, err := levals[i](l)
				if err != nil {
					return nil, nil, err
				}
				rv, err := revals[i](r)
				if err != nil {
					return nil, nil, err
				}
				if lv.IsNull() || rv.IsNull() || !sqlval.Equal(lv, rv) {
					continue probe
				}
			}
			out = append(out, combinedRow(l, r))
		}
	}
	return out, next, nil
}

func combinedRow(l, r sqlval.Row) sqlval.Row {
	nr := make(sqlval.Row, 0, len(l)+len(r))
	nr = append(nr, l...)
	return append(nr, r...)
}

// applyResolvable filters rows by the now-resolvable conditions and
// returns the still-pending ones.
func applyResolvable(b []sqldb.Binding, rows []sqlval.Row, conds []sqldb.Expr) ([]sqlval.Row, []sqldb.Expr, error) {
	var applicable, pending []sqldb.Expr
	for _, c := range conds {
		if sqldb.Resolvable(b, c) {
			applicable = append(applicable, c)
		} else {
			pending = append(pending, c)
		}
	}
	if len(applicable) == 0 {
		return rows, pending, nil
	}
	match := sqldb.CompilePredicates(b, applicable)
	kept := rows[:0]
	for _, row := range rows {
		ok, err := match(row)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			kept = append(kept, row)
		}
	}
	return kept, pending, nil
}

func bytesOf(rows []sqlval.Row) int64 {
	var n int64
	for _, r := range rows {
		n += int64(r.EncodedSize())
	}
	return n
}
