package engine

import (
	"strings"
	"testing"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

// paperQueries are the five benchmark queries of §6.1.
func paperQueries() map[string]string {
	return map[string]string{
		"Q1": tpch.Q1Default(),
		"Q2": tpch.Q2Default(),
		"Q3": tpch.Q3Default(),
		"Q4": tpch.Q4Default(),
		"Q5": tpch.Q5(),
	}
}

// TestEnginesAgreeWithOracle runs every benchmark query on every engine
// and checks the distributed results against a single merged database.
func TestEnginesAgreeWithOracle(t *testing.T) {
	b, oracle := newTPCHBackend(t, 4, 0.004)
	for name, q := range paperQueries() {
		stmt, err := sqldb.ParseSelect(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := oracle.ExecStmt(stmt)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		engines := map[string]interface {
			Execute(*sqldb.SelectStmt) (*QueryResult, error)
		}{
			"basic":     &Basic{B: b},
			"parallel":  &Parallel{B: b},
			"mapreduce": &MapReduce{B: b},
			"adaptive":  NewAdaptive(b, Options{}, ""),
		}
		for ename, e := range engines {
			got, err := e.Execute(stmt)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, ename, err)
			}
			assertSameResult(t, name+"/"+ename, got.Result, want)
			if got.Cost.Total() <= 0 {
				t.Errorf("%s on %s: zero cost", name, ename)
			}
		}
	}
}

func TestBasicSelectionContactsAllPeers(t *testing.T) {
	b, _ := newTPCHBackend(t, 4, 0.002)
	stmt, _ := sqldb.ParseSelect(tpch.Q1Default())
	e := &Basic{B: b}
	qr, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Peers) != 4 || qr.SubQueries != 4 {
		t.Errorf("peers=%v subqueries=%d", qr.Peers, qr.SubQueries)
	}
	if qr.Engine != "basic" {
		t.Errorf("engine = %s", qr.Engine)
	}
}

func TestAggregationShipsPartialsNotRows(t *testing.T) {
	b, _ := newTPCHBackend(t, 4, 0.004)
	agg, _ := sqldb.ParseSelect(tpch.Q2Default())
	raw, _ := sqldb.ParseSelect(`SELECT l_extendedprice, l_discount FROM lineitem WHERE l_shipdate > DATE '1998-06-01'`)
	e := &Basic{B: b}
	aggRes, err := e.Execute(agg)
	if err != nil {
		t.Fatal(err)
	}
	rawRes, err := e.Execute(raw)
	if err != nil {
		t.Fatal(err)
	}
	if aggRes.BytesFetched*10 > rawRes.BytesFetched {
		t.Errorf("partial aggregation fetched %d bytes, raw rows %d — expected ≥10x reduction",
			aggRes.BytesFetched, rawRes.BytesFetched)
	}
}

func TestBloomJoinReducesTransfer(t *testing.T) {
	b, _ := newTPCHBackend(t, 3, 0.004)
	// A selective predicate on orders makes most lineitem rows bloom out.
	q := `SELECT l.l_extendedprice, o.o_totalprice FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE o.o_orderdate > DATE '1998-06-01'`
	stmt, err := sqldb.ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	with := &Basic{B: b}
	without := &Basic{B: b, Opts: Options{DisableBloomJoin: true}}
	rWith, err := with.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	rWithout, err := without.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "bloom equivalence", rWith.Result, rWithout.Result)
	if rWith.BytesFetched >= rWithout.BytesFetched {
		t.Errorf("bloom join fetched %d >= %d without", rWith.BytesFetched, rWithout.BytesFetched)
	}
}

func TestGateBlocksOfflinePeers(t *testing.T) {
	b, _ := newTPCHBackend(t, 3, 0.002)
	b.offline["peer-01"] = true
	stmt, _ := sqldb.ParseSelect(tpch.Q1Default())
	if _, err := (&Basic{B: b}).Execute(stmt); err == nil {
		t.Error("query over offline peer's scope succeeded (strong consistency violated)")
	}
}

func TestUnknownTableError(t *testing.T) {
	b, _ := newTPCHBackend(t, 2, 0.002)
	stmt, _ := sqldb.ParseSelect(`SELECT x FROM ghost`)
	_, err := (&Basic{B: b}).Execute(stmt)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("err = %v", err)
	}
}

func TestEmptyLocationYieldsEmptyResult(t *testing.T) {
	b, _ := newTPCHBackend(t, 2, 0.002)
	// Region exists in schema but only peer-00 generated it; drop it to
	// simulate a table with no publishers.
	for _, db := range b.dbs {
		db.DropTable("region")
	}
	stmt, _ := sqldb.ParseSelect(`SELECT r_name FROM region`)
	qr, err := (&Basic{B: b}).Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Result.Rows) != 0 {
		t.Errorf("rows = %d", len(qr.Result.Rows))
	}
}

func TestMapReduceJobShapePerQuery(t *testing.T) {
	b, _ := newTPCHBackend(t, 3, 0.002)
	r := b.rates
	cases := []struct {
		name    string
		sql     string
		minJobs int
		maxJobs int
	}{
		{"Q1 map-only", tpch.Q1Default(), 1, 1},
		{"Q2 one job", tpch.Q2Default(), 1, 1},
		{"Q3 one join job", tpch.Q3Default(), 1, 1},
		{"Q4 join+agg", tpch.Q4Default(), 2, 2},
		{"Q5 three joins + agg", tpch.Q5(), 4, 4},
	}
	for _, c := range cases {
		stmt, _ := sqldb.ParseSelect(c.sql)
		qr, err := (&MapReduce{B: b}).Execute(stmt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		jobs := int(qr.Cost.Startup / (r.MRJobStartup + r.MRPullDelay))
		if qr.Cost.Startup%(r.MRJobStartup+r.MRPullDelay) != 0 {
			// Map-only jobs have no pull delay; count by startup alone.
			jobs = int(qr.Cost.Startup / r.MRJobStartup)
		}
		if jobs < c.minJobs || jobs > c.maxJobs {
			t.Errorf("%s: %d jobs (startup %v), want %d..%d", c.name, jobs, qr.Cost.Startup, c.minJobs, c.maxJobs)
		}
	}
}

func TestParallelFasterThanBasicOnJoins(t *testing.T) {
	b, _ := newTPCHBackend(t, 4, 0.004)
	stmt, _ := sqldb.ParseSelect(tpch.Q4Default())
	basic, err := (&Basic{B: b}).Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Parallel{B: b}).Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// The parallel engine spreads the join CPU across nodes; its CPU
	// component should not meaningfully exceed the basic engine's
	// (small fixed overheads aside).
	if par.Cost.CPU > basic.Cost.CPU*11/10 {
		t.Errorf("parallel CPU %v > basic CPU %v", par.Cost.CPU, basic.Cost.CPU)
	}
}

func TestAdaptivePrefersP2PForSmallAndMRForLarge(t *testing.T) {
	params := DefaultCostParams(vtime.DefaultRates())
	small := []Level{
		{Table: "a", SizeBytes: 1e6, Partitions: 1, G: 1},
		{Table: "b", SizeBytes: 1e6, Partitions: 5, G: 1e-6},
	}
	if params.CBP(small) >= params.CMR(small) {
		t.Errorf("small workload: CBP %v >= CMR %v (ϕ should dominate)", params.CBP(small), params.CMR(small))
	}
	big := []Level{
		{Table: "a", SizeBytes: 5e9, Partitions: 1, G: 1},
		{Table: "b", SizeBytes: 5e9, Partitions: 50, G: 2e-10},
		{Table: "c", SizeBytes: 5e9, Partitions: 50, G: 2e-10},
		{Table: "d", SizeBytes: 5e9, Partitions: 50, G: 2e-10},
	}
	if params.CBP(big) <= params.CMR(big) {
		t.Errorf("big workload: CBP %v <= CMR %v (replication should dominate)", params.CBP(big), params.CMR(big))
	}
}

func TestAdaptiveExecutesChosenEngine(t *testing.T) {
	b, oracle := newTPCHBackend(t, 3, 0.002)
	a := NewAdaptive(b, Options{}, "")
	stmt, _ := sqldb.ParseSelect(tpch.Q5())
	plan, err := a.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Engine != "parallel" && plan.Engine != "mapreduce" {
		t.Fatalf("plan engine = %s", plan.Engine)
	}
	qr, err := a.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(qr.Engine, "adaptive(") {
		t.Errorf("engine = %s", qr.Engine)
	}
	want, _ := oracle.ExecStmt(stmt)
	assertSameResult(t, "adaptive Q5", qr.Result, want)
	// Feedback was recorded for the joined tables.
	if len(a.FB.g) == 0 {
		t.Error("no feedback recorded")
	}
}

func TestPlanSingleTableSkipsCostComparison(t *testing.T) {
	b, _ := newTPCHBackend(t, 2, 0.002)
	a := NewAdaptive(b, Options{}, "")
	stmt, _ := sqldb.ParseSelect(tpch.Q1Default())
	plan, err := a.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Engine != "parallel" || len(plan.Levels) != 0 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestPayGoChargeRecorded(t *testing.T) {
	b, _ := newTPCHBackend(t, 3, 0.003)
	small, err := (&Basic{B: b}).Execute(mustSelect(t, tpch.Q1Default()))
	if err != nil {
		t.Fatal(err)
	}
	big, err := (&Basic{B: b}).Execute(mustSelect(t, tpch.Q5()))
	if err != nil {
		t.Fatal(err)
	}
	if small.PayGoUnits <= 0 || big.PayGoUnits <= 0 {
		t.Fatalf("charges = %v / %v", small.PayGoUnits, big.PayGoUnits)
	}
	// The heavier query costs more (Eq. 1 is monotone in bytes processed).
	if big.PayGoUnits <= small.PayGoUnits {
		t.Errorf("Q5 charge %v <= Q1 charge %v", big.PayGoUnits, small.PayGoUnits)
	}
	for name, e := range map[string]interface {
		Execute(*sqldb.SelectStmt) (*QueryResult, error)
	}{
		"parallel": &Parallel{B: b}, "mapreduce": &MapReduce{B: b},
	} {
		qr, err := e.Execute(mustSelect(t, tpch.Q4Default()))
		if err != nil {
			t.Fatal(err)
		}
		if qr.PayGoUnits <= 0 {
			t.Errorf("%s charge = %v", name, qr.PayGoUnits)
		}
	}
}

func mustSelect(t *testing.T, sql string) *sqldb.SelectStmt {
	t.Helper()
	stmt, err := sqldb.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// TestCrossTableNonEquiPredicate: a residual (non-equi) cross-table
// condition applies correctly in every engine.
func TestCrossTableNonEquiPredicate(t *testing.T) {
	b, oracle := newTPCHBackend(t, 3, 0.003)
	sql := `SELECT o.o_orderkey, l.l_extendedprice FROM orders o
		JOIN lineitem l ON o.o_orderkey = l.l_orderkey
		WHERE l.l_extendedprice * 4 > o.o_totalprice`
	stmt := mustSelect(t, sql)
	want, err := oracle.ExecStmt(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("test query selects nothing; adjust the predicate")
	}
	for name, e := range map[string]interface {
		Execute(*sqldb.SelectStmt) (*QueryResult, error)
	}{
		"basic": &Basic{B: b}, "parallel": &Parallel{B: b}, "mapreduce": &MapReduce{B: b},
	} {
		got, err := e.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSameResult(t, "non-equi/"+name, got.Result, want)
	}
}

// TestIsNullSurvivesDistribution: masked/NULL-aware predicates behave
// identically distributed and local.
func TestIsNullSurvivesDistribution(t *testing.T) {
	b, oracle := newTPCHBackend(t, 2, 0.002)
	// No generated column is NULL, so IS NOT NULL keeps everything and
	// IS NULL keeps nothing — both sides must agree.
	for _, sql := range []string{
		`SELECT COUNT(*) FROM lineitem WHERE l_comment IS NOT NULL`,
		`SELECT COUNT(*) FROM lineitem WHERE l_comment IS NULL`,
	} {
		stmt := mustSelect(t, sql)
		want, err := oracle.ExecStmt(stmt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := (&Basic{B: b}).Execute(stmt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, sql, got.Result, want)
	}
}
