package engine

import (
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/vtime"
	"fmt"
)

// Parallel is the parallel P2P processing strategy (§5.3): instead of
// pulling everything to one node, each join level disseminates work to
// a set of processing nodes. The conventional replicated join is used —
// the smaller side (the running intermediate result) is replicated to
// every node holding a partition of the level's table, and each node
// joins its partition locally (Fig. 4). When the query groups or
// aggregates, the last level also pre-aggregates at the processing
// nodes, and the root (the query submitting peer, level 0 of the
// processing graph) merges the partials and produces the final result.
type Parallel struct {
	B         Backend
	Opts      Options
	User      string
	Timestamp uint64
	// Span is the query's parent span; join levels open children under
	// it. Nil disables tracing.
	Span *telemetry.Span
}

// Execute runs the query through the processing graph and charges it
// under the pay-as-you-go model.
func (e *Parallel) Execute(stmt *sqldb.SelectStmt) (*QueryResult, error) {
	qr, err := e.execute(stmt)
	if err == nil {
		qr.chargePayGo(DefaultCostParams(e.B.Rates()))
	}
	return qr, err
}

func (e *Parallel) execute(stmt *sqldb.SelectStmt) (*QueryResult, error) {
	if err := e.Opts.Validate(); err != nil {
		return nil, err
	}
	if e.Timestamp == 0 {
		e.Timestamp = e.B.QueryTimestamp()
	}
	rates := e.B.Rates()
	accesses, cross, err := resolveAccess(e.B, stmt, e.Opts.FanoutWidth, e.Span)
	if err != nil {
		return nil, err
	}
	peers := allPeers(accesses)
	if err := e.B.Gate(peers); err != nil {
		return nil, err
	}
	qr := &QueryResult{Engine: "parallel", Peers: peers, IndexKind: worstIndexKind(accesses)}
	qr.Cost = rates.Overhead()
	var hops int
	for _, a := range accesses {
		hops += a.loc.Hops
	}
	qr.Cost = qr.Cost.Add(rates.NetMsgs(hops))

	// Single-table queries have no join levels; fall back to the basic
	// strategy's machinery (the processing graph degenerates to the
	// root).
	if len(accesses) < 2 {
		basic := &Basic{B: e.B, Opts: e.Opts, User: e.User, Timestamp: e.Timestamp, Span: e.Span}
		res, err := basic.Execute(stmt)
		if err != nil {
			return nil, err
		}
		res.Engine = "parallel"
		return res, nil
	}

	// Level L: fetch the first table's rows to the submitting peer; this
	// seeds the intermediate result that levels L-1..1 replicate.
	basicHelper := &Basic{B: e.B, Opts: e.Opts, User: e.User, Timestamp: e.Timestamp, Span: e.Span}
	seed, err := basicHelper.fetch(accesses[0], "", nil)
	if err != nil {
		return nil, err
	}
	qr.addRound(seed)
	shipped := seed.rows
	// shippedBytes caches bytesOf(shipped), re-measured only when a new
	// intermediate result replaces it, so broadcast costs and the final
	// CPU charge don't re-encode the same rows.
	shippedBytes := bytesOf(shipped)
	shippedBindings := []sqldb.Binding{{Alias: accesses[0].ref.Alias, Schema: accesses[0].subSchema}}
	pending := cross

	// Decompose aggregation so the last join level can pre-aggregate at
	// the processing nodes.
	decomp, aggregated, err := DecomposeAggregates(stmt, func(t string) *sqldb.Schema { return e.B.Schema(t) })
	if err != nil {
		return nil, err
	}

	var partialRows []sqlval.Row
	preAggregated := false
	for i := 1; i < len(accesses); i++ {
		a := accesses[i]
		right := []sqldb.Binding{{Alias: a.ref.Alias, Schema: a.subSchema}}
		lkeys, rkeys, rest := sqldb.EquiJoinConds(pending, shippedBindings, right)
		combined := append(append([]sqldb.Binding{}, shippedBindings...), right...)
		var residual, stillPending []sqldb.Expr
		for _, c := range rest {
			if sqldb.Resolvable(combined, c) {
				residual = append(residual, c)
			} else {
				stillPending = append(stillPending, c)
			}
		}

		last := i == len(accesses)-1
		sp := e.Span.StartChild(fmt.Sprintf("join-level-%d:%s", i, a.ref.Table),
			telemetry.L("peers", fmt.Sprintf("%d", len(a.loc.Peers))))
		task := JoinTask{
			Local:           SubQueryRequest{Stmt: sqldb.BuildSubQuery(a.ref, a.columns, a.conjuncts), User: e.User, Timestamp: e.Timestamp, Trace: sp.Context()},
			Shipped:         shipped,
			ShippedBindings: shippedBindings,
			LocalBinding:    sqldb.Binding{Alias: a.ref.Alias, Schema: a.subSchema},
			ShippedKeys:     lkeys,
			LocalKeys:       rkeys,
			Residual:        residual,
		}
		if last && aggregated && len(stillPending) == 0 {
			task.Partial = decomp.Partial
		}

		// Replicate the intermediate result to every partition of T_i
		// and run the joins in parallel (cost: the broadcast serializes
		// at the sender, W(i) = t(T_i)·s(i+1); the node joins run in
		// parallel — and really do, through the fan-out pool).
		task.ShippedBytes = shippedBytes
		qr.Cost = qr.Cost.Add(rates.NetTransfer(shippedBytes * int64(len(a.loc.Peers))))
		results, err := FanOutOrdered(e.Opts.FanoutWidth, len(a.loc.Peers), e.Opts.DispatchOrder(a.loc.Peers), func(i int) (*sqldb.Result, error) {
			return e.B.JoinAt(a.loc.Peers[i], task)
		})
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		var nodeCost vtime.Cost
		var nextRows []sqlval.Row
		var inbound int64
		for _, res := range results {
			qr.SubQueries++
			qr.BytesScanned += res.Stats.BytesScanned
			qr.BytesFetched += res.Stats.BytesReturned
			qr.RowsScanned += res.Stats.RowsScanned
			nodeCost = vtime.Par(nodeCost, rates.DiskRead(res.Stats.BytesScanned).
				Add(rates.CPUWork(res.Stats.BytesScanned+shippedBytes)))
			inbound += res.Stats.BytesReturned
			nextRows = append(nextRows, res.Rows...)
		}
		qr.Cost = qr.Cost.Add(nodeCost).Add(rates.NetMsgs(len(a.loc.Peers))).Add(rates.NetTransfer(inbound))
		sp.SetVTime(qr.Cost.Total())
		sp.SetAttr("rows", fmt.Sprintf("%d", len(nextRows)))
		sp.End()

		if last && task.Partial != nil {
			partialRows = nextRows
			preAggregated = true
			pending = stillPending
			break
		}
		shipped = nextRows
		shippedBytes = bytesOf(shipped)
		shippedBindings = combined
		pending = stillPending
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("engine: unresolvable predicate %s", sqldb.AndAll(pending))
	}

	// Root: merge partials or project joined rows.
	if aggregated {
		if !preAggregated {
			// The last level could not pre-aggregate (pending residuals);
			// aggregate the joined rows at the root instead.
			res, err := sqldb.ProjectRows(stmt, shippedBindings, shipped)
			if err != nil {
				return nil, err
			}
			qr.Cost = qr.Cost.Add(rates.CPUWork(shippedBytes))
			qr.Result = res
			return qr, nil
		}
		merged, err := sqldb.ProjectRows(decomp.Merge,
			[]sqldb.Binding{{Alias: "partial", Schema: decomp.PartialSchema}}, partialRows)
		if err != nil {
			return nil, err
		}
		qr.Cost = qr.Cost.Add(rates.CPUWork(bytesOf(partialRows)))
		qr.Result = merged
		return qr, nil
	}
	res, err := sqldb.ProjectRows(stmt, shippedBindings, shipped)
	if err != nil {
		return nil, err
	}
	qr.Cost = qr.Cost.Add(rates.CPUWork(shippedBytes))
	qr.Result = res
	return qr, nil
}

// ExecuteJoinTask is the processing-node side of a replicated join; the
// peer package calls it when a JoinTask arrives. localRows are the
// partition rows the node fetched from its own database.
func ExecuteJoinTask(task JoinTask, localRows []sqlval.Row) (*sqldb.Result, error) {
	right := []sqldb.Binding{task.LocalBinding}
	joined, combined, err := hashJoin(task.ShippedBindings, task.Shipped, right, localRows, task.ShippedKeys, task.LocalKeys)
	if err != nil {
		return nil, err
	}
	rows, pending, err := applyResolvable(combined, joined, task.Residual)
	if err != nil {
		return nil, err
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("engine: join task residual %s unresolvable", sqldb.AndAll(pending))
	}
	if task.Partial != nil {
		res, err := sqldb.ProjectRows(task.Partial, combined, rows)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	res := &sqldb.Result{Rows: rows}
	for _, b := range combined {
		res.Columns = append(res.Columns, b.Schema.ColumnNames()...)
	}
	return res, nil
}
