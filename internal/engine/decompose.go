package engine

import (
	"fmt"
	"strings"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// Decomposition is a two-phase rewrite of an aggregate query: the
// Partial statement is pushed to every data owner peer (computing
// per-peer partial aggregates over its horizontal partition), and the
// Merge statement combines the concatenated partial rows at the query
// submitting peer. This is how the basic engine evaluates Q2-style
// queries — "the partial aggregation results are sent back to the query
// submitting peer where the final aggregation is performed" (§6.1.7) —
// and how the MapReduce engine's reducers merge map-side partials.
type Decomposition struct {
	Partial       *sqldb.SelectStmt
	Merge         *sqldb.SelectStmt
	PartialSchema *sqldb.Schema
	// PartialMergeOps gives, per partial column, how two partial rows of
	// the same group combine: "key" (group columns, identical within a
	// group), "SUM", "MIN", or "MAX". The MapReduce engine's reducers
	// use it to merge partials without widening them.
	PartialMergeOps []string
}

// MergePartialRows folds partial rows of one group into a single partial
// row using PartialMergeOps.
func (d *Decomposition) MergePartialRows(rows []sqlval.Row) sqlval.Row {
	if len(rows) == 0 {
		return nil
	}
	out := rows[0].Clone()
	for _, row := range rows[1:] {
		for i, op := range d.PartialMergeOps {
			switch op {
			case "SUM":
				switch {
				case row[i].IsNull():
					// NULL partials contribute nothing.
				case out[i].IsNull():
					out[i] = row[i]
				default:
					out[i] = sqlval.Add(out[i], row[i])
				}
			case "MIN":
				if out[i].IsNull() || (!row[i].IsNull() && sqlval.Less(row[i], out[i])) {
					out[i] = row[i]
				}
			case "MAX":
				if out[i].IsNull() || (!row[i].IsNull() && sqlval.Less(out[i], row[i])) {
					out[i] = row[i]
				}
			}
		}
	}
	return out
}

// DecomposeAggregates rewrites stmt. It returns ok=false when the
// statement has no aggregation (plain selects ship rows, not partials).
// schemaOf resolves global table schemas for result-kind inference.
func DecomposeAggregates(stmt *sqldb.SelectStmt, schemaOf func(string) *sqldb.Schema) (*Decomposition, bool, error) {
	grouped := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, item := range stmt.Items {
		if !item.Star && sqldb.HasAggregate(item.Expr) {
			grouped = true
		}
	}
	if !grouped {
		return nil, false, nil
	}
	for _, item := range stmt.Items {
		if item.Star {
			return nil, false, fmt.Errorf("engine: SELECT * cannot combine with aggregation decomposition")
		}
	}

	var bindings []sqldb.Binding
	for _, ref := range stmt.From {
		s := schemaOf(ref.Table)
		if s == nil {
			return nil, false, fmt.Errorf("engine: unknown table %s", ref.Table)
		}
		bindings = append(bindings, sqldb.Binding{Alias: ref.Alias, Schema: s})
	}

	d := &Decomposition{
		Partial: &sqldb.SelectStmt{
			From:    stmt.From,
			Where:   stmt.Where,
			GroupBy: stmt.GroupBy,
			Limit:   -1,
		},
		Merge: &sqldb.SelectStmt{
			From:  []sqldb.TableRef{{Table: "partial", Alias: "partial"}},
			Limit: stmt.Limit,
		},
		PartialSchema: &sqldb.Schema{Table: "partial"},
	}

	// Partial columns: one per GROUP BY expression (g0, g1, ...) plus
	// decomposed aggregate parts (a0, a1, ...).
	groupAlias := make(map[string]string) // expr string -> partial column
	for i, g := range stmt.GroupBy {
		name := fmt.Sprintf("g%d", i)
		groupAlias[g.String()] = name
		d.Partial.Items = append(d.Partial.Items, sqldb.SelectItem{Expr: g, Alias: name})
		d.PartialSchema.Columns = append(d.PartialSchema.Columns,
			sqldb.Column{Name: name, Kind: inferKind(g, bindings)})
		d.PartialMergeOps = append(d.PartialMergeOps, "key")
		d.Merge.GroupBy = append(d.Merge.GroupBy, &sqldb.ColumnRef{Column: name})
	}

	// mergeExprFor builds the merge-side expression for one aggregate
	// call, appending the partial columns it needs.
	aggMergeExpr := make(map[string]sqldb.Expr) // agg call string -> merge expr
	nextAgg := 0
	addPartial := func(e sqldb.Expr, kind sqlval.Kind, mergeOp string) string {
		name := fmt.Sprintf("a%d", nextAgg)
		nextAgg++
		d.Partial.Items = append(d.Partial.Items, sqldb.SelectItem{Expr: e, Alias: name})
		d.PartialSchema.Columns = append(d.PartialSchema.Columns, sqldb.Column{Name: name, Kind: kind})
		d.PartialMergeOps = append(d.PartialMergeOps, mergeOp)
		return name
	}
	mergeExprFor := func(fc *sqldb.FuncCall) (sqldb.Expr, error) {
		key := fc.String()
		if e, ok := aggMergeExpr[key]; ok {
			return e, nil
		}
		var out sqldb.Expr
		switch strings.ToUpper(fc.Name) {
		case "COUNT":
			col := addPartial(fc, sqlval.KindInt, "SUM")
			out = &sqldb.FuncCall{Name: "SUM", Args: []sqldb.Expr{&sqldb.ColumnRef{Column: col}}}
		case "SUM":
			kind := inferKind(fc.Args[0], bindings)
			col := addPartial(fc, kind, "SUM")
			out = &sqldb.FuncCall{Name: "SUM", Args: []sqldb.Expr{&sqldb.ColumnRef{Column: col}}}
		case "MIN", "MAX":
			kind := inferKind(fc.Args[0], bindings)
			col := addPartial(fc, kind, strings.ToUpper(fc.Name))
			out = &sqldb.FuncCall{Name: strings.ToUpper(fc.Name), Args: []sqldb.Expr{&sqldb.ColumnRef{Column: col}}}
		case "AVG":
			kind := inferKind(fc.Args[0], bindings)
			sumCol := addPartial(&sqldb.FuncCall{Name: "SUM", Args: fc.Args}, kind, "SUM")
			cntCol := addPartial(&sqldb.FuncCall{Name: "COUNT", Args: fc.Args}, sqlval.KindInt, "SUM")
			out = &sqldb.Binary{
				Op: "/",
				L:  &sqldb.FuncCall{Name: "SUM", Args: []sqldb.Expr{&sqldb.ColumnRef{Column: sumCol}}},
				R:  &sqldb.FuncCall{Name: "SUM", Args: []sqldb.Expr{&sqldb.ColumnRef{Column: cntCol}}},
			}
		default:
			return nil, fmt.Errorf("engine: cannot decompose aggregate %s", fc.Name)
		}
		aggMergeExpr[key] = out
		return out, nil
	}

	// rewrite maps an original output expression to its merge-side form.
	var rewrite func(e sqldb.Expr) (sqldb.Expr, error)
	rewrite = func(e sqldb.Expr) (sqldb.Expr, error) {
		if e == nil {
			return nil, nil
		}
		if alias, ok := groupAlias[e.String()]; ok {
			return &sqldb.ColumnRef{Column: alias}, nil
		}
		switch x := e.(type) {
		case *sqldb.FuncCall:
			if sqldb.HasAggregate(x) {
				return mergeExprFor(x)
			}
			return x, nil
		case *sqldb.Binary:
			l, err := rewrite(x.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(x.R)
			if err != nil {
				return nil, err
			}
			return &sqldb.Binary{Op: x.Op, L: l, R: r}, nil
		case *sqldb.Unary:
			inner, err := rewrite(x.E)
			if err != nil {
				return nil, err
			}
			return &sqldb.Unary{Op: x.Op, E: inner}, nil
		case *sqldb.Literal:
			return x, nil
		case *sqldb.ColumnRef:
			// A bare column that is not a GROUP BY expression: ship it as
			// an extra partial column (sample-row semantics, matching the
			// local executor's permissive grouping).
			kind := inferKind(x, bindings)
			col := addPartial(&sqldb.FuncCall{Name: "MIN", Args: []sqldb.Expr{x}}, kind, "MIN")
			return &sqldb.FuncCall{Name: "MIN", Args: []sqldb.Expr{&sqldb.ColumnRef{Column: col}}}, nil
		default:
			return nil, fmt.Errorf("engine: cannot rewrite %T for merge", e)
		}
	}

	for _, item := range stmt.Items {
		m, err := rewrite(item.Expr)
		if err != nil {
			return nil, false, err
		}
		alias := item.Alias
		if alias == "" {
			if ref, ok := item.Expr.(*sqldb.ColumnRef); ok {
				alias = ref.Column
			} else {
				alias = item.Expr.String()
			}
		}
		d.Merge.Items = append(d.Merge.Items, sqldb.SelectItem{Expr: m, Alias: alias})
	}
	if stmt.Having != nil {
		m, err := rewrite(stmt.Having)
		if err != nil {
			return nil, false, err
		}
		d.Merge.Having = m
	}
	for _, o := range stmt.OrderBy {
		m, err := rewrite(o.Expr)
		if err != nil {
			// ORDER BY may reference a select alias; pass it through.
			m = o.Expr
		}
		d.Merge.OrderBy = append(d.Merge.OrderBy, sqldb.OrderItem{Expr: m, Desc: o.Desc})
	}
	return d, true, nil
}

// inferKind guesses the result kind of an expression for the partial
// schema.
func inferKind(e sqldb.Expr, bindings []sqldb.Binding) sqlval.Kind {
	switch x := e.(type) {
	case *sqldb.ColumnRef:
		for _, b := range bindings {
			if x.Table != "" && !strings.EqualFold(x.Table, b.Alias) {
				continue
			}
			if ci := b.Schema.ColumnIndex(x.Column); ci >= 0 {
				return b.Schema.Columns[ci].Kind
			}
		}
		return sqlval.KindFloat
	case *sqldb.Literal:
		return x.Val.Kind()
	case *sqldb.FuncCall:
		if strings.EqualFold(x.Name, "COUNT") {
			return sqlval.KindInt
		}
		if len(x.Args) > 0 {
			return inferKind(x.Args[0], bindings)
		}
		return sqlval.KindFloat
	case *sqldb.Binary:
		lk := inferKind(x.L, bindings)
		rk := inferKind(x.R, bindings)
		if x.Op == "/" {
			return sqlval.KindFloat
		}
		if lk == sqlval.KindInt && rk == sqlval.KindInt {
			return sqlval.KindInt
		}
		return sqlval.KindFloat
	case *sqldb.Unary:
		return inferKind(x.E, bindings)
	default:
		return sqlval.KindFloat
	}
}
