package engine

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"bestpeer/internal/sqldb"
)

// TestFanOutIndexOrderedSlots proves the slots come back in index order
// regardless of completion order: later indexes finish first.
func TestFanOutIndexOrderedSlots(t *testing.T) {
	const n = 16
	got, err := FanOut(n, n, func(i int) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}
}

// TestFanOutLowestIndexErrorWins proves the deterministic error choice:
// whatever completes first, the error at the lowest index is returned —
// the same one the sequential loop would have surfaced — so a data
// owner's ErrSnapshotNewer keeps winning (Definition 2 resubmission).
func TestFanOutLowestIndexErrorWins(t *testing.T) {
	late := fmt.Errorf("wrapped: %w", ErrSnapshotNewer)
	early := errors.New("fast unrelated failure")
	for trial := 0; trial < 5; trial++ {
		_, err := FanOut(8, 8, func(i int) (int, error) {
			switch i {
			case 2:
				time.Sleep(20 * time.Millisecond) // slow, lowest-index error
				return 0, late
			case 6:
				return 0, early // fails immediately
			}
			return i, nil
		})
		if !errors.Is(err, ErrSnapshotNewer) {
			t.Fatalf("trial %d: got %v, want the index-2 snapshot error", trial, err)
		}
	}
}

// TestFanOutWidthOneIsSequential proves the ablation baseline stops at
// the first error without issuing later calls.
func TestFanOutWidthOneIsSequential(t *testing.T) {
	var calls atomic.Int32
	boom := errors.New("boom")
	_, err := FanOut(1, 8, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("sequential path issued %d calls, want 4", got)
	}
}

// barrierBackend wraps the TPC-H test backend with a rendezvous: every
// SubQuery blocks until all data owners' calls are in flight at once,
// so the query can only complete when the engine drives the owners from
// multiple goroutines. A sequential engine deadlocks and trips the
// timeout error instead.
type barrierBackend struct {
	*testBackend
	want    int32
	arrived atomic.Int32
	release chan struct{}
}

func (b *barrierBackend) SubQuery(peer string, req SubQueryRequest) (*sqldb.Result, error) {
	if b.arrived.Add(1) == b.want {
		close(b.release)
	}
	select {
	case <-b.release:
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("fan-out barrier: call to %s alone in flight; engine is not concurrent", peer)
	}
	return b.testBackend.SubQuery(peer, req)
}

// TestBasicFetchRunsConcurrently proves the fetch round really
// dispatches to all data owners at once (§5.2's parallel fetch).
func TestBasicFetchRunsConcurrently(t *testing.T) {
	inner, _ := newTPCHBackend(t, 8, 0.001)
	b := &barrierBackend{testBackend: inner, want: 8, release: make(chan struct{})}
	stmt, err := sqldb.ParseSelect("SELECT l_orderkey FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	e := &Basic{B: b}
	qr, err := e.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if qr.SubQueries != 8 {
		t.Fatalf("SubQueries = %d, want 8", qr.SubQueries)
	}
}

// TestConcurrentExecutionDeterministic proves the tentpole invariant:
// concurrent fan-out produces byte-for-byte the same rows, virtual-time
// cost, and pay-as-you-go charge as the sequential loops it replaced,
// for every paper query on both distributed engines.
func TestConcurrentExecutionDeterministic(t *testing.T) {
	b, _ := newTPCHBackend(t, 4, 0.002)
	for name, q := range paperQueries() {
		stmt, err := sqldb.ParseSelect(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		engines := map[string]func(Options) interface {
			Execute(*sqldb.SelectStmt) (*QueryResult, error)
		}{
			"basic": func(o Options) interface {
				Execute(*sqldb.SelectStmt) (*QueryResult, error)
			} {
				return &Basic{B: b, Opts: o}
			},
			"parallel": func(o Options) interface {
				Execute(*sqldb.SelectStmt) (*QueryResult, error)
			} {
				return &Parallel{B: b, Opts: o}
			},
		}
		for ename, mk := range engines {
			seq, err := mk(Options{FanoutWidth: 1}).Execute(stmt)
			if err != nil {
				t.Fatalf("%s on sequential %s: %v", name, ename, err)
			}
			conc, err := mk(Options{}).Execute(stmt)
			if err != nil {
				t.Fatalf("%s on concurrent %s: %v", name, ename, err)
			}
			if !reflect.DeepEqual(seq.Result.Rows, conc.Result.Rows) {
				t.Errorf("%s/%s: concurrent rows differ from sequential", name, ename)
			}
			if !reflect.DeepEqual(seq.Result.Columns, conc.Result.Columns) {
				t.Errorf("%s/%s: columns differ", name, ename)
			}
			if seq.Cost != conc.Cost {
				t.Errorf("%s/%s: cost %v != %v", name, ename, seq.Cost, conc.Cost)
			}
			if seq.PayGoUnits != conc.PayGoUnits {
				t.Errorf("%s/%s: paygo %v != %v", name, ename, seq.PayGoUnits, conc.PayGoUnits)
			}
			if seq.SubQueries != conc.SubQueries || seq.BytesFetched != conc.BytesFetched || seq.BytesScanned != conc.BytesScanned {
				t.Errorf("%s/%s: counters differ: %+v vs %+v", name, ename, seq, conc)
			}
		}
	}
}

// TestRotatedOrderPermutesAndDemotesHot: every RotatedOrder result is a
// permutation of [0,n), successive calls rotate the starting index (no
// clock, no RNG — just a counter), and peers marked hot always land at
// the tail of the dispatch order.
func TestRotatedOrderPermutesAndDemotesHot(t *testing.T) {
	if got := RotatedOrder(0, nil); got != nil {
		t.Errorf("RotatedOrder(0) = %v, want nil", got)
	}
	if got := RotatedOrder(1, nil); got != nil {
		t.Errorf("RotatedOrder(1) = %v, want nil (single target needs no order)", got)
	}

	const n = 5
	starts := make(map[int]bool)
	for round := 0; round < 2*n; round++ {
		order := RotatedOrder(n, nil)
		if len(order) != n {
			t.Fatalf("round %d: len = %d", round, len(order))
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("round %d: not a permutation: %v", round, order)
			}
			seen[i] = true
		}
		starts[order[0]] = true
	}
	if len(starts) != n {
		t.Errorf("2n rounds started at %d distinct indices, want all %d", len(starts), n)
	}

	hot := func(i int) bool { return i == 2 }
	for round := 0; round < n; round++ {
		order := RotatedOrder(n, hot)
		if order[n-1] != 2 {
			t.Fatalf("hot index not last: %v", order)
		}
	}
}

// TestFanOutOrderedResultsIndexOrdered: an explicit dispatch order
// changes which call starts first, never which slot a result lands in —
// the ordered run is element-for-element identical to the natural one.
// A malformed order (wrong length) falls back to natural dispatch.
func TestFanOutOrderedResultsIndexOrdered(t *testing.T) {
	call := func(i int) (int, error) { return i * 10, nil }
	want, err := FanOut(4, 6, call)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{
		{5, 4, 3, 2, 1, 0},
		{2, 0, 4, 1, 5, 3},
		nil,
		{1, 0}, // wrong length: ignored
	} {
		got, err := FanOutOrdered(4, 6, order, call)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("order %v: results %v, want %v", order, got, want)
		}
	}
	// Sequential width ignores the order entirely and still bails at the
	// lowest-index error.
	calls := 0
	_, err = FanOutOrdered(1, 6, []int{5, 4, 3, 2, 1, 0}, func(i int) (int, error) {
		calls++
		if i == 1 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || calls != 2 {
		t.Errorf("sequential ordered run: err %v after %d calls, want error at call 2", err, calls)
	}
}

// TestDispatchOrderInertWithoutHotPeers: Options.DispatchOrder is the
// bit-identical-when-off guarantee — no hot peers, or a single target,
// yields a nil order (natural dispatch); with hot peers named, the
// order is a permutation with every hot target demoted to the tail.
func TestDispatchOrderInertWithoutHotPeers(t *testing.T) {
	targets := []string{"p0", "p1", "p2", "p3"}
	if got := (Options{}).DispatchOrder(targets); got != nil {
		t.Errorf("no hot peers: order = %v, want nil", got)
	}
	if got := (Options{HotPeers: []string{"p9"}}).DispatchOrder(targets[:1]); got != nil {
		t.Errorf("single target: order = %v, want nil", got)
	}
	o := Options{HotPeers: []string{"p1", "p3"}}
	for round := 0; round < 4; round++ {
		order := o.DispatchOrder(targets)
		if len(order) != len(targets) {
			t.Fatalf("order = %v", order)
		}
		last2 := map[string]bool{targets[order[2]]: true, targets[order[3]]: true}
		if !last2["p1"] || !last2["p3"] {
			t.Errorf("hot peers not demoted to the tail: %v", order)
		}
	}
}
