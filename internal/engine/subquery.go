package engine

import (
	"strings"

	"bestpeer/internal/sqldb"
)

// ApplyBloomToResult performs the data-owner side of a bloom join:
// rows whose filter-column value cannot appear in the filter are
// dropped before the result ships back. The peer package and test
// backends share it. It returns the number of rows dropped.
func ApplyBloomToResult(res *sqldb.Result, column string, bloom *Bloom) int {
	if bloom == nil || column == "" {
		return 0
	}
	ci := -1
	for i, c := range res.Columns {
		if strings.EqualFold(c, column) {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0
	}
	kept := res.Rows[:0]
	dropped := 0
	var keptBytes int64
	for _, row := range res.Rows {
		if bloom.MayContain(row[ci]) {
			kept = append(kept, row)
			keptBytes += int64(row.EncodedSize())
		} else {
			dropped++
		}
	}
	res.Rows = kept
	res.Stats.RowsReturned = int64(len(kept))
	res.Stats.BytesReturned = keptBytes
	return dropped
}
