package engine

import (
	"testing"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

func schemaOf(t *testing.T) func(string) *sqldb.Schema {
	t.Helper()
	schemas := map[string]*sqldb.Schema{}
	for _, s := range tpch.Schemas(false) {
		schemas[s.Table] = s
	}
	return func(name string) *sqldb.Schema { return schemas[name] }
}

func TestDecomposeNonAggregate(t *testing.T) {
	stmt, _ := sqldb.ParseSelect(`SELECT l_orderkey FROM lineitem`)
	_, ok, err := DecomposeAggregates(stmt, schemaOf(t))
	if err != nil || ok {
		t.Errorf("plain select decomposed: %v %v", ok, err)
	}
}

func TestDecomposeSumCount(t *testing.T) {
	stmt, _ := sqldb.ParseSelect(`SELECT COUNT(*), SUM(l_quantity) FROM lineitem WHERE l_quantity > 5`)
	d, ok, err := DecomposeAggregates(stmt, schemaOf(t))
	if err != nil || !ok {
		t.Fatalf("decompose: %v %v", ok, err)
	}
	if len(d.PartialSchema.Columns) != 2 {
		t.Fatalf("partial columns = %+v", d.PartialSchema.Columns)
	}
	// Simulate two peers' partials: (count, sum).
	partials := []sqlval.Row{
		{sqlval.Int(3), sqlval.Int(30)},
		{sqlval.Int(2), sqlval.Int(12)},
	}
	res, err := sqldb.ProjectRows(d.Merge, []sqldb.Binding{{Alias: "partial", Schema: d.PartialSchema}}, partials)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 5 || res.Rows[0][1].AsInt() != 42 {
		t.Errorf("merged = %v", res.Rows[0])
	}
}

func TestDecomposeAvgAsSumOverCount(t *testing.T) {
	stmt, _ := sqldb.ParseSelect(`SELECT AVG(l_quantity) FROM lineitem`)
	d, ok, err := DecomposeAggregates(stmt, schemaOf(t))
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Partial = (sum, count); peers: (10, 2) and (20, 3) -> avg 6.
	partials := []sqlval.Row{
		{sqlval.Int(10), sqlval.Int(2)},
		{sqlval.Int(20), sqlval.Int(3)},
	}
	res, err := sqldb.ProjectRows(d.Merge, []sqldb.Binding{{Alias: "partial", Schema: d.PartialSchema}}, partials)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsFloat() != 6 {
		t.Errorf("avg = %v", res.Rows[0][0])
	}
}

func TestDecomposeGroupByHaving(t *testing.T) {
	stmt, _ := sqldb.ParseSelect(`SELECT l_returnflag, MIN(l_quantity), MAX(l_quantity) FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) > 1 ORDER BY l_returnflag`)
	d, ok, err := DecomposeAggregates(stmt, schemaOf(t))
	if err != nil || !ok {
		t.Fatal(err)
	}
	// Partial schema: g0, min, max, count-for-having.
	if len(d.PartialSchema.Columns) != 4 {
		t.Fatalf("partial schema = %+v", d.PartialSchema.Columns)
	}
	partials := []sqlval.Row{
		{sqlval.Str("A"), sqlval.Int(1), sqlval.Int(5), sqlval.Int(1)},
		{sqlval.Str("A"), sqlval.Int(2), sqlval.Int(9), sqlval.Int(2)},
		{sqlval.Str("B"), sqlval.Int(4), sqlval.Int(4), sqlval.Int(1)},
	}
	res, err := sqldb.ProjectRows(d.Merge, []sqldb.Binding{{Alias: "partial", Schema: d.PartialSchema}}, partials)
	if err != nil {
		t.Fatal(err)
	}
	// Group B has count 1: HAVING filters it.
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "A" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][1].AsInt() != 1 || res.Rows[0][2].AsInt() != 9 {
		t.Errorf("min/max = %v/%v", res.Rows[0][1], res.Rows[0][2])
	}
}

func TestDecomposeRejectsStar(t *testing.T) {
	stmt, _ := sqldb.ParseSelect(`SELECT * FROM lineitem GROUP BY l_returnflag`)
	if _, _, err := DecomposeAggregates(stmt, schemaOf(t)); err == nil {
		t.Error("star + group by accepted")
	}
}

func TestMergePartialRowsOps(t *testing.T) {
	d := &Decomposition{PartialMergeOps: []string{"key", "SUM", "MIN", "MAX"}}
	rows := []sqlval.Row{
		{sqlval.Str("k"), sqlval.Int(10), sqlval.Int(5), sqlval.Int(5)},
		{sqlval.Str("k"), sqlval.Null(), sqlval.Int(2), sqlval.Int(9)},
		{sqlval.Str("k"), sqlval.Int(1), sqlval.Null(), sqlval.Null()},
	}
	out := d.MergePartialRows(rows)
	if out[0].AsString() != "k" || out[1].AsInt() != 11 || out[2].AsInt() != 2 || out[3].AsInt() != 9 {
		t.Errorf("merged = %v", out)
	}
	if d.MergePartialRows(nil) != nil {
		t.Error("empty merge not nil")
	}
	// NULL-led SUM picks up later values.
	rows2 := []sqlval.Row{
		{sqlval.Str("k"), sqlval.Null(), sqlval.Int(1), sqlval.Int(1)},
		{sqlval.Str("k"), sqlval.Int(7), sqlval.Int(1), sqlval.Int(1)},
	}
	if got := d.MergePartialRows(rows2); got[1].AsInt() != 7 {
		t.Errorf("NULL-led sum = %v", got[1])
	}
}

func TestBloomFilterBasics(t *testing.T) {
	b := NewBloom(1000)
	for i := 0; i < 1000; i++ {
		b.Add(sqlval.Int(int64(i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContain(sqlval.Int(int64(i))) {
			t.Fatalf("false negative on %d", i)
		}
	}
	fp := 0
	for i := 10_000; i < 20_000; i++ {
		if b.MayContain(sqlval.Int(int64(i))) {
			fp++
		}
	}
	if fp > 300 { // ~1% target; allow 3%
		t.Errorf("false positives = %d / 10000", fp)
	}
	if b.Len() != 1000 || b.SizeBytes() <= 0 {
		t.Errorf("len/size = %d/%d", b.Len(), b.SizeBytes())
	}
}

func TestApplyBloomToResult(t *testing.T) {
	bloom := NewBloom(4)
	bloom.Add(sqlval.Int(1))
	bloom.Add(sqlval.Int(2))
	res := &sqldb.Result{
		Columns: []string{"k", "v"},
		Rows: []sqlval.Row{
			{sqlval.Int(1), sqlval.Str("a")},
			{sqlval.Int(99), sqlval.Str("b")},
			{sqlval.Int(2), sqlval.Str("c")},
		},
	}
	dropped := ApplyBloomToResult(res, "K", bloom) // case-insensitive
	if dropped != 1 || len(res.Rows) != 2 {
		t.Errorf("dropped=%d rows=%d", dropped, len(res.Rows))
	}
	if res.Stats.RowsReturned != 2 || res.Stats.BytesReturned <= 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	// Missing column or nil bloom: no-op.
	if ApplyBloomToResult(res, "ghost", bloom) != 0 {
		t.Error("ghost column filtered")
	}
	if ApplyBloomToResult(res, "k", nil) != 0 {
		t.Error("nil bloom filtered")
	}
}

func TestCostModelEquations(t *testing.T) {
	p := CostParams{Alpha: 1, BetaBP: 2, BetaMR: 3, Gamma: 4, Mu: 2, Phi: 10}
	// Eq. 2: CBasic = (α+β)N + γN/µ = 3*100 + 4*50 = 500.
	if got := p.CBasic(100); got != 500 {
		t.Errorf("CBasic = %v", got)
	}
	levels := []Level{
		{Table: "a", SizeBytes: 100, Partitions: 1, G: 0.01}, // s1 = 1
		{Table: "b", SizeBytes: 200, Partitions: 4, G: 0.01}, // s2 = 2
	}
	// CBP: W = 1*1 + 4*1 = 5; (α+βBP)=3 -> 15.
	if got := p.CBP(levels); got != 15 {
		t.Errorf("CBP = %v", got)
	}
	// CMR: W = (1+100+10) + (1+200+10) = 322; (α+βMR)=4 -> 1288.
	if got := p.CMR(levels); got != 1288 {
		t.Errorf("CMR = %v", got)
	}
	sizes := IntermediateSizes(levels)
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestFeedbackStore(t *testing.T) {
	f := NewFeedback()
	if got := f.Lookup("t", 0.5); got != 0.5 {
		t.Errorf("default = %v", got)
	}
	f.Record("t", 0.1)
	if got := f.Lookup("t", 0.5); got != 0.1 {
		t.Errorf("recorded = %v", got)
	}
	f.Record("t", -1) // invalid selectivity ignored
	if got := f.Lookup("t", 0.5); got != 0.1 {
		t.Errorf("invalid overwrote: %v", got)
	}
}

func TestPredictLatencies(t *testing.T) {
	r := vtime.DefaultRates()
	p := DefaultCostParams(r)
	small := []Level{
		{Table: "a", SizeBytes: 1e6, Partitions: 1, G: 1e-6},
		{Table: "b", SizeBytes: 1e6, Partitions: 4, G: 1e-6},
	}
	big := []Level{
		{Table: "a", SizeBytes: 1e9, Partitions: 1, G: 1e-9},
		{Table: "b", SizeBytes: 1e9, Partitions: 4, G: 1e-9},
	}
	bpSmall := p.PredictLatencyBP(small, r).Total()
	bpBig := p.PredictLatencyBP(big, r).Total()
	if bpBig <= bpSmall {
		t.Errorf("BP latency not monotone in size: %v vs %v", bpSmall, bpBig)
	}
	mr := p.PredictLatencyMR(small, r)
	// Two levels = two jobs' worth of startup and pull delay.
	wantStartup := 2 * (r.MRJobStartup + r.MRPullDelay)
	if mr.Startup != wantStartup {
		t.Errorf("MR predicted startup = %v, want %v", mr.Startup, wantStartup)
	}
	// For tiny inputs the MR prediction is startup-dominated and exceeds
	// the P2P prediction.
	if mr.Total() <= bpSmall {
		t.Errorf("MR prediction %v <= BP %v on tiny input", mr.Total(), bpSmall)
	}
}

func TestBloomGobRoundTrip(t *testing.T) {
	b := NewBloom(100)
	for i := 0; i < 100; i++ {
		b.Add(sqlval.Int(int64(i * 3)))
	}
	data, err := b.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Bloom
	if err := back.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if back.Len() != b.Len() || back.SizeBytes() != b.SizeBytes() {
		t.Errorf("metadata changed: %d/%d vs %d/%d", back.Len(), back.SizeBytes(), b.Len(), b.SizeBytes())
	}
	for i := 0; i < 100; i++ {
		if !back.MayContain(sqlval.Int(int64(i * 3))) {
			t.Fatalf("false negative after round trip at %d", i*3)
		}
	}
	if err := back.GobDecode([]byte{1}); err == nil {
		t.Error("short payload accepted")
	}
	if err := back.GobDecode(make([]byte, 16)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestRouteKeyMultiColumn(t *testing.T) {
	b := []sqldb.Binding{{Alias: "t", Schema: &sqldb.Schema{Table: "t", Columns: []sqldb.Column{
		{Name: "a", Kind: sqlval.KindInt}, {Name: "b", Kind: sqlval.KindString},
	}}}}
	keys := []sqldb.Expr{&sqldb.ColumnRef{Column: "a"}, &sqldb.ColumnRef{Column: "b"}}
	r1 := sqlval.Row{sqlval.Int(1), sqlval.Str("x")}
	r2 := sqlval.Row{sqlval.Int(1), sqlval.Str("x")}
	r3 := sqlval.Row{sqlval.Int(2), sqlval.Str("x")}
	route := compileRouteKey(b, keys)
	k1, err := route(r1)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := route(r2)
	k3, _ := route(r3)
	if !sqlval.Equal(k1, k2) {
		t.Error("equal keys routed differently")
	}
	if sqlval.Equal(k1, k3) {
		t.Error("different keys routed identically (exact collision)")
	}
	if k, _ := compileRouteKey(b, nil)(r1); !k.IsNull() {
		t.Errorf("empty key list = %v", k)
	}
	if k := groupKeyOf(sqlval.Row{sqlval.Int(1), sqlval.Int(2)}); k.Kind() != sqlval.KindString {
		t.Errorf("multi group key kind = %v", k.Kind())
	}
	if k := groupKeyOf(nil); !k.IsNull() {
		t.Errorf("empty group key = %v", k)
	}
}
