package engine

import (
	"errors"
	"fmt"
	"sort"

	"bestpeer/internal/indexer"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/vtime"
)

// ErrSnapshotNewer is the Definition 2 rejection: the data owner's
// database snapshot is newer than the query's timestamp, so it cannot
// answer for the snapshot the query names; the query processor must
// terminate and resubmit the query with a fresh timestamp.
var ErrSnapshotNewer = errors.New("engine: peer snapshot newer than query timestamp; resubmit")

// SubQueryRequest is a single-table data retrieval pushed to a data
// owner peer. The receiving peer executes it against its local database
// under the requesting user's access role.
type SubQueryRequest struct {
	Stmt *sqldb.SelectStmt
	// User identifies the submitting user for access-control rewriting
	// at the data owner ("" = benchmark full-access user).
	User string
	// Timestamp is the query's logical submission time (Definition 2).
	// Zero disables the snapshot check (local tooling).
	Timestamp uint64
	// Bloom, when set with BloomColumn, makes the data owner drop rows
	// whose BloomColumn value cannot match the filter before returning
	// (bloom join, §5.2).
	BloomColumn string
	Bloom       *Bloom
	// Trace is the calling round's span context; the backend attaches
	// it to the pnet message so the data owner's execution nests under
	// the caller's trace. Zero means "untraced".
	Trace telemetry.SpanContext
	// StmtBytes is the request's modeled wire size (see SubQueryBytes),
	// computed once where the request is built so a fan-out round does
	// not re-render the WHERE clause for every target peer. Zero means
	// "unknown; the backend measures it per call".
	StmtBytes int64
}

// SubQueryBytes models the wire size of a subquery request: a fixed
// statement envelope plus the rendered WHERE clause. Engines stamp it
// into SubQueryRequest.StmtBytes once per round; the formula must stay
// identical to the backend's fallback so virtual-time costs do not
// depend on which side measured.
func SubQueryBytes(stmt *sqldb.SelectStmt) int64 {
	size := int64(64)
	if stmt.Where != nil {
		size += int64(len(stmt.Where.String()))
	}
	return size
}

// JoinTask asks a data peer to act as a processing node of the parallel
// P2P engine (§5.3, Fig. 4): it fetches its local partition with Local,
// joins it with the replicated Shipped rows on the given keys, applies
// Residual conditions over the combined layout, and — when Partial is
// set — pre-aggregates the joined rows before returning them.
type JoinTask struct {
	Local SubQueryRequest
	// Shipped is the replicated intermediate result; its layout is
	// ShippedBindings. Combined rows are shipped columns followed by
	// local columns.
	Shipped         []sqlval.Row
	ShippedBindings []sqldb.Binding
	// ShippedBytes is the encoded size of Shipped, computed once per
	// join level at the sender so per-node dispatch and cost accounting
	// need not re-encode the replicated rows for every processing node.
	// Zero means "unknown; measure locally".
	ShippedBytes int64
	// LocalBinding describes the local partition's columns in the
	// combined layout.
	LocalBinding sqldb.Binding
	// ShippedKeys/LocalKeys are the equi-join key expressions over the
	// shipped and local layouts respectively.
	ShippedKeys []sqldb.Expr
	LocalKeys   []sqldb.Expr
	// Residual conditions are evaluated over the combined layout.
	Residual []sqldb.Expr
	// Partial, when non-nil, aggregates the combined rows at the
	// processing node (distributed partial aggregation).
	Partial *sqldb.SelectStmt
}

// Backend is the surface the engines program against; the peer package
// implements it over pnet, local databases, access control, and the
// BATON-based locator.
type Backend interface {
	// Self is the query submitting peer's ID.
	Self() string
	// Schema resolves a global table's schema.
	Schema(table string) *sqldb.Schema
	// Locate resolves the data owner peers for one table access.
	Locate(table string, conjuncts []sqldb.Expr, columns []string) (indexer.Location, error)
	// Gate enforces strong consistency: it fails (or blocks until
	// recovery) when any peer's data scope is offline (§3.2).
	Gate(peers []string) error
	// SubQuery executes a single-table subquery at a data owner peer.
	SubQuery(peer string, req SubQueryRequest) (*sqldb.Result, error)
	// JoinAt executes a replicated-join task at a processing node.
	JoinAt(peer string, task JoinTask) (*sqldb.Result, error)
	// MR returns the MapReduce cluster, or nil when not mounted.
	MR() *mapreduce.Cluster
	// QueryTimestamp returns the logical time to stamp a new query with
	// (Definition 2); zero disables snapshot checking.
	QueryTimestamp() uint64
	// Rates returns the virtual-time cost rates.
	Rates() vtime.Rates
}

// QueryResult is a completed distributed query.
type QueryResult struct {
	Result *sqldb.Result
	// Engine names the strategy that ran: "basic", "parallel",
	// "mapreduce", or "single-peer".
	Engine string
	// Cost is the query's virtual-time latency.
	Cost vtime.Cost
	// Peers lists the data peers contacted.
	Peers []string
	// SubQueries counts remote data retrievals.
	SubQueries int
	// BytesFetched is the volume shipped to the submitting peer.
	BytesFetched int64
	// BytesScanned is the remote disk volume read.
	BytesScanned int64
	// RowsScanned is the total rows read from peer databases while
	// answering this query (summed across subqueries and join tasks).
	// The monitoring plane reports it per peer as a load signal.
	RowsScanned int64
	// IndexKind reports which index type located the data owners.
	IndexKind indexer.IndexKind
	// Resubmissions counts Definition 2 retries before this result.
	Resubmissions int
	// PayGoUnits is the pay-as-you-go charge for this query under Eq. 1,
	// C = (α+β)·N + γ·t, applied to the measured quantities: disk bytes
	// scanned, bytes shipped, and processing seconds (§5: "BestPeer++
	// charges the user for data retrieval, network bandwidth usages and
	// query processing").
	PayGoUnits float64
	// Trace is the query's collected span tree (nil when tracing was
	// off or the engine was driven without a root span).
	Trace *telemetry.Trace
}

// chargePayGo computes and stores the query's Eq. 1 charge.
func (qr *QueryResult) chargePayGo(p CostParams) {
	qr.PayGoUnits = p.Alpha*float64(qr.BytesScanned) +
		p.BetaBP*float64(qr.BytesFetched) +
		p.Gamma*qr.Cost.CPU.Seconds()
}

// Options tune the engines; the zero value disables nothing (defaults
// on). The ablation benchmarks flip individual flags.
type Options struct {
	// DisableBloomJoin turns off the bloom-join optimization.
	DisableBloomJoin bool
	// DisableSinglePeer turns off the single-peer optimization
	// (§6.2.3).
	DisableSinglePeer bool
	// PushIntermediateTransfer models the paper's pull-vs-push ablation:
	// false (default) keeps BestPeer++'s push transfers; true adds the
	// MapReduce-style pull delay to every fetch round.
	SimulatePullTransfer bool
	// FanoutWidth bounds the concurrent remote calls per fan-out round
	// (subquery fetches, replicated-join dispatch, table resolution).
	// 0 selects min(DefaultFanoutWidth, #targets), the paper's 20
	// fetch threads (§6.1.2); 1 forces sequential execution — the
	// ablation baseline the determinism tests and benchmarks compare
	// against. Negative widths are rejected by Validate.
	FanoutWidth int
	// HotPeers lists peers the monitoring plane reports as
	// heat-saturated: fan-out rounds rotate their dispatch order and
	// contact these peers last, so synchronized rounds stop front-
	// loading the hot peer. Empty (the default) keeps the fixed
	// natural dispatch order — results are identical either way.
	HotPeers []string
}

// DispatchOrder returns the per-round dispatch order for the given
// targets: nil (the natural order, byte-identical to the pre-heat
// behavior) when no hot peers are configured, otherwise a rotated
// permutation with heat-saturated targets pushed to the back.
func (o Options) DispatchOrder(targets []string) []int {
	if len(o.HotPeers) == 0 || len(targets) <= 1 {
		return nil
	}
	hot := make(map[string]bool, len(o.HotPeers))
	for _, p := range o.HotPeers {
		hot[p] = true
	}
	return RotatedOrder(len(targets), func(i int) bool { return hot[targets[i]] })
}

// Validate rejects malformed options before any remote work starts.
// Every engine entry point calls it, so a negative FanoutWidth fails
// loudly instead of silently selecting the default width.
func (o Options) Validate() error {
	if o.FanoutWidth < 0 {
		return fmt.Errorf("engine: invalid FanoutWidth %d: must be >= 0 (0 selects the default of %d, 1 forces sequential execution)",
			o.FanoutWidth, DefaultFanoutWidth)
	}
	return nil
}

// tableAccess is one FROM entry's resolved access plan.
type tableAccess struct {
	ref       sqldb.TableRef
	schema    *sqldb.Schema
	columns   []string
	subSchema *sqldb.Schema
	conjuncts []sqldb.Expr
	loc       indexer.Location
}

// resolveAccess locates data owners and builds push-down plans for every
// FROM entry. The per-table Locate calls — index lookups that may fall
// back to probing every participant — fan out concurrently with the
// given width. The round is traced as one "resolve" span under parent.
func resolveAccess(b Backend, stmt *sqldb.SelectStmt, width int, parent *telemetry.Span) ([]*tableAccess, []sqldb.Expr, error) {
	sp := parent.StartChild("resolve", telemetry.L("tables", fmt.Sprintf("%d", len(stmt.From))))
	defer sp.End()
	schemas := make([]*sqldb.Schema, len(stmt.From))
	for i, ref := range stmt.From {
		s := b.Schema(ref.Table)
		if s == nil {
			err := &UnknownTableError{Table: ref.Table}
			sp.SetError(err)
			return nil, nil, err
		}
		schemas[i] = s
	}
	perTable, cross := sqldb.SplitConjunctsPerTable(stmt.Where, stmt.From, schemas)
	out, err := FanOut(width, len(stmt.From), func(i int) (*tableAccess, error) {
		ref := stmt.From[i]
		cols := sqldb.NeededColumns(stmt, ref, schemas[i])
		sub, err := sqldb.SubSchema(schemas[i], cols)
		if err != nil {
			return nil, err
		}
		loc, err := b.Locate(ref.Table, perTable[i], cols)
		if err != nil {
			return nil, err
		}
		return &tableAccess{
			ref:       ref,
			schema:    schemas[i],
			columns:   cols,
			subSchema: sub,
			conjuncts: perTable[i],
			loc:       loc,
		}, nil
	})
	if err != nil {
		sp.SetError(err)
		return nil, nil, err
	}
	return out, cross, nil
}

// UnknownTableError reports a FROM table absent from the global schema.
type UnknownTableError struct{ Table string }

func (e *UnknownTableError) Error() string {
	return "engine: unknown global table " + e.Table
}

// allPeers unions the access plans' peer lists, sorted.
func allPeers(accesses []*tableAccess) []string {
	set := make(map[string]bool)
	for _, a := range accesses {
		for _, p := range a.loc.Peers {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// singleCommonPeer reports whether one peer hosts every involved table
// (the single-peer optimization's trigger).
func singleCommonPeer(accesses []*tableAccess) (string, bool) {
	peers := allPeers(accesses)
	if len(peers) != 1 {
		return "", false
	}
	for _, a := range accesses {
		if len(a.loc.Peers) != 1 {
			return "", false
		}
	}
	return peers[0], true
}
