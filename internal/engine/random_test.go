package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bestpeer/internal/sqldb"
)

// randomQuery generates a random but valid SELECT over the TPC-H
// orders/lineitem tables: random projections, random literal
// predicates, an optional join, and optional aggregation with GROUP BY.
func randomQuery(rng *rand.Rand) string {
	type col struct {
		name string
		kind string // "int", "float", "date"
	}
	orders := []col{
		{"o_orderkey", "int"}, {"o_custkey", "int"},
		{"o_totalprice", "float"}, {"o_orderdate", "date"},
		{"o_shippriority", "int"},
	}
	lineitem := []col{
		{"l_orderkey", "int"}, {"l_partkey", "int"}, {"l_quantity", "int"},
		{"l_extendedprice", "float"}, {"l_discount", "float"},
		{"l_shipdate", "date"},
	}
	lit := func(c col) string {
		switch c.kind {
		case "int":
			return fmt.Sprintf("%d", rng.Intn(5000))
		case "float":
			return fmt.Sprintf("%.2f", rng.Float64()*5000)
		default:
			return fmt.Sprintf("DATE '199%d-%02d-%02d'", rng.Intn(7)+2, rng.Intn(12)+1, rng.Intn(28)+1)
		}
	}
	op := func() string {
		return []string{"<", "<=", ">", ">=", "="}[rng.Intn(5)]
	}
	pred := func(alias string, cols []col) string {
		c := cols[rng.Intn(len(cols))]
		return fmt.Sprintf("%s.%s %s %s", alias, c.name, op(), lit(c))
	}

	join := rng.Intn(2) == 0
	var from string
	var pool []struct {
		alias string
		col   col
	}
	add := func(alias string, cols []col) {
		for _, c := range cols {
			pool = append(pool, struct {
				alias string
				col   col
			}{alias, c})
		}
	}
	var conds []string
	if join {
		from = "orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey"
		add("o", orders)
		add("l", lineitem)
		if rng.Intn(2) == 0 {
			conds = append(conds, pred("o", orders))
		}
		if rng.Intn(2) == 0 {
			conds = append(conds, pred("l", lineitem))
		}
	} else {
		from = "lineitem l"
		add("l", lineitem)
		for i := 0; i < rng.Intn(3); i++ {
			conds = append(conds, pred("l", lineitem))
		}
	}

	pick := func() (string, col) {
		p := pool[rng.Intn(len(pool))]
		return p.alias, p.col
	}

	aggregate := rng.Intn(2) == 0
	var items []string
	var groupBy string
	if aggregate {
		ga, gc := pick()
		groupRef := ga + "." + gc.name
		items = append(items, groupRef)
		fns := []string{"COUNT", "SUM", "MIN", "MAX", "AVG"}
		for i := 0; i < rng.Intn(2)+1; i++ {
			fa, fc := pick()
			fn := fns[rng.Intn(len(fns))]
			if fn == "COUNT" && rng.Intn(2) == 0 {
				items = append(items, "COUNT(*)")
			} else {
				items = append(items, fmt.Sprintf("%s(%s.%s) AS a%d", fn, fa, fc.name, i))
			}
		}
		groupBy = " GROUP BY " + groupRef
	} else {
		for i := 0; i < rng.Intn(3)+1; i++ {
			pa, pc := pick()
			items = append(items, pa+"."+pc.name)
		}
	}

	sql := "SELECT " + strings.Join(items, ", ") + " FROM " + from
	if len(conds) > 0 {
		sql += " WHERE " + strings.Join(conds, " AND ")
	}
	sql += groupBy
	return sql
}

// TestRandomQueriesAllEnginesAgree cross-checks the three engines
// against the single-database oracle on randomized queries.
func TestRandomQueriesAllEnginesAgree(t *testing.T) {
	b, oracle := newTPCHBackend(t, 3, 0.003)
	rng := rand.New(rand.NewSource(20260706))
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		sql := randomQuery(rng)
		stmt, err := sqldb.ParseSelect(sql)
		if err != nil {
			t.Fatalf("trial %d: generated unparseable SQL %q: %v", trial, sql, err)
		}
		want, err := oracle.ExecStmt(stmt)
		if err != nil {
			t.Fatalf("trial %d: oracle failed on %q: %v", trial, sql, err)
		}
		engines := map[string]interface {
			Execute(*sqldb.SelectStmt) (*QueryResult, error)
		}{
			"basic":     &Basic{B: b},
			"parallel":  &Parallel{B: b},
			"mapreduce": &MapReduce{B: b},
		}
		for name, e := range engines {
			got, err := e.Execute(stmt)
			if err != nil {
				t.Fatalf("trial %d: %s failed on %q: %v", trial, name, sql, err)
			}
			g, w := canonical(got.Result), canonical(want)
			if len(g) != len(w) {
				t.Fatalf("trial %d: %s returned %d rows, oracle %d\nsql: %s",
					trial, name, len(g), len(w), sql)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("trial %d: %s row %d differs\nsql: %s\n got  %s\n want %s",
						trial, name, i, sql, g[i], w[i])
				}
			}
		}
	}
}
