package engine

import (
	"strings"
	"testing"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
)

// TestNegativeFanoutWidthRejected pins that a negative width fails fast
// with a descriptive error at every engine entry point, instead of
// silently selecting the default.
func TestNegativeFanoutWidthRejected(t *testing.T) {
	b, _ := newTPCHBackend(t, 2, 0.002)
	stmt, err := sqldb.ParseSelect(tpch.Q1Default())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{FanoutWidth: -3}

	engines := map[string]interface {
		Execute(*sqldb.SelectStmt) (*QueryResult, error)
	}{
		"basic":    &Basic{B: b, Opts: opts},
		"parallel": &Parallel{B: b, Opts: opts},
		"adaptive": NewAdaptive(b, opts, ""),
	}
	for name, e := range engines {
		if _, err := e.Execute(stmt); err == nil {
			t.Errorf("%s: negative FanoutWidth accepted", name)
		} else if !strings.Contains(err.Error(), "invalid FanoutWidth -3") {
			t.Errorf("%s: error %q does not name the invalid width", name, err)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options should validate: %v", err)
	}
	if err := (Options{FanoutWidth: 20}).Validate(); err != nil {
		t.Errorf("positive width should validate: %v", err)
	}
	if err := (Options{FanoutWidth: -1}).Validate(); err == nil {
		t.Error("negative width should be rejected")
	}
}
