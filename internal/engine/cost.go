// Package engine implements BestPeer++'s pay-as-you-go query processing
// (paper §5): the basic fetch-and-process strategy, the parallel P2P
// strategy with replicated joins over a processing graph, the
// MapReduce strategy with symmetric hash joins, and the adaptive planner
// that chooses between them using the paper's cost models.
package engine

import "bestpeer/internal/vtime"

// CostParams carries the cost-model constants of Table 3 and §5.2.
type CostParams struct {
	// Alpha is the cost ratio of local disk usage (per byte).
	Alpha float64
	// BetaBP is the network cost ratio of the P2P engine (per byte).
	BetaBP float64
	// BetaMR is the network cost ratio of the MapReduce engine (per
	// byte); MapReduce shuffles each tuple once per level instead of
	// replicating it, but its transfers go through HDFS materialization.
	BetaMR float64
	// Gamma is the cost of using one processing node for a second
	// (Eq. 1).
	Gamma float64
	// Mu is u in Eq. 2: bytes one processing node works through per
	// second.
	Mu float64
	// Phi is ϕ in Eq. 9: the constant per-job overhead of configuring
	// and launching a MapReduce job, expressed in byte-equivalents of
	// work (measured at runtime, per the paper, and adjusted by the
	// statistics module's feedback loop).
	Phi float64
}

// DefaultCostParams derives byte-cost ratios from the virtual-time
// rates: a byte of disk, network, or CPU work costs time 1/rate, and ϕ
// is the startup cost converted through µ.
func DefaultCostParams(r vtime.Rates) CostParams {
	return CostParams{
		Alpha:  1 / r.DiskBytesPerSec,
		BetaBP: 1 / r.NetBytesPerSec,
		BetaMR: 1.5 / r.NetBytesPerSec, // shuffle + HDFS materialization
		Gamma:  1,
		Mu:     r.CPUBytesPerSec,
		Phi:    r.MRJobStartup.Seconds() * r.CPUBytesPerSec,
	}
}

// CBasic implements Eq. 2: the charge for the basic strategy processing
// N bytes on a single node, C = (α+β)·N + γ·N/µ.
func (p CostParams) CBasic(n int64) float64 {
	return (p.Alpha+p.BetaBP)*float64(n) + p.Gamma*float64(n)/p.Mu
}

// Level describes one level of a processing graph (Definition 3): the
// table joined at this level, its size in bytes, its partition count
// t(T_i), and the join selectivity g(i) relating the level's output to
// its inputs (Eq. 4: s(i) = s(i+1)·S(T_i)·g(i)).
type Level struct {
	Table      string
	SizeBytes  float64 // S(T_i)
	Partitions int     // t(T_i)
	G          float64 // g(i)
}

// IntermediateSizes returns s(i) for i = L..1 (index 0 is level L, the
// leaves), via the recurrence of Eq. 5 with s(L+1) = 1.
func IntermediateSizes(levels []Level) []float64 {
	out := make([]float64, len(levels))
	s := 1.0
	for i, lv := range levels {
		s = s * lv.SizeBytes * lv.G
		out[i] = s
	}
	return out
}

// CBP implements Eq. 8: the parallel P2P engine's cost. The workload of
// level i is W(i) = t(T_i)·s(i+1) (Eq. 3: the level-(i+1) intermediate
// result is broadcast to every partition of T_i), and the total charge
// is (α+β_BP)·ΣW(i).
func (p CostParams) CBP(levels []Level) float64 {
	var total float64
	sPrev := 1.0
	for _, lv := range levels {
		w := float64(lv.Partitions) * sPrev
		total += w
		sPrev = sPrev * lv.SizeBytes * lv.G
	}
	return (p.Alpha + p.BetaBP) * total
}

// CMR implements Eq. 11: the MapReduce engine's cost. The workload of
// level i is W(i) = s(i+1) + S(T_i) + ϕ (Eq. 9: each tuple is shuffled
// once per level, plus the job-launch overhead), and the total charge is
// (α+β_MR)·ΣW(i).
func (p CostParams) CMR(levels []Level) float64 {
	var total float64
	sPrev := 1.0
	for _, lv := range levels {
		total += sPrev + lv.SizeBytes + p.Phi
		sPrev = sPrev * lv.SizeBytes * lv.G
	}
	return (p.Alpha + p.BetaMR) * total
}

// PredictLatencyBP converts the P2P processing-graph workload into a
// virtual-time estimate: each level broadcasts the previous intermediate
// result to t partitions and processes partition+intermediate in
// parallel.
func (p CostParams) PredictLatencyBP(levels []Level, rates vtime.Rates) vtime.Cost {
	var cost vtime.Cost
	sPrev := 1.0
	for _, lv := range levels {
		broadcast := float64(lv.Partitions) * sPrev
		perNode := sPrev + lv.SizeBytes/float64(maxInt(lv.Partitions, 1))
		cost = cost.Add(rates.NetTransfer(int64(broadcast)))
		cost = cost.Add(rates.CPUWork(int64(perNode)))
		sPrev = sPrev * lv.SizeBytes * lv.G
	}
	return cost
}

// PredictLatencyMR converts the MapReduce workload into a virtual-time
// estimate: one job per level (startup + pull delay), scanning the
// level's table partition-parallel and shuffling the intermediate
// result once.
func (p CostParams) PredictLatencyMR(levels []Level, rates vtime.Rates) vtime.Cost {
	var cost vtime.Cost
	sPrev := 1.0
	for _, lv := range levels {
		cost = cost.Add(rates.JobStartup(1)).Add(rates.PullDelay(1))
		parts := maxInt(lv.Partitions, 1)
		cost = cost.Add(rates.DiskRead(int64(lv.SizeBytes / float64(parts))))
		cost = cost.Add(rates.NetTransfer(int64((sPrev + lv.SizeBytes) / float64(parts))))
		cost = cost.Add(rates.CPUWork(int64((sPrev + lv.SizeBytes) / float64(parts))))
		sPrev = sPrev * lv.SizeBytes * lv.G
	}
	return cost
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Feedback is the statistics module's feedback loop (§5.5): measured
// selectivities from executed queries refine later estimates. Keys are
// per (table, level) pairs.
type Feedback struct {
	g map[string]float64
}

// NewFeedback returns an empty feedback store.
func NewFeedback() *Feedback { return &Feedback{g: make(map[string]float64)} }

// Record stores a measured selectivity for a table's join level.
func (f *Feedback) Record(table string, g float64) {
	if g > 0 {
		f.g[table] = g
	}
}

// Lookup returns the recorded selectivity, or def when none measured.
func (f *Feedback) Lookup(table string, def float64) float64 {
	if v, ok := f.g[table]; ok {
		return v
	}
	return def
}
