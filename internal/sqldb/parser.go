package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"bestpeer/internal/sqlval"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	l := newLexer(src)
	stmt, err := parseStatement(l)
	if err != nil {
		return nil, err
	}
	l.acceptSymbol(";")
	if l.err != nil {
		return nil, l.err
	}
	if l.tok.kind != tokEOF {
		return nil, fmt.Errorf("sqldb: trailing input at offset %d (%q)", l.tok.pos, l.tok.text)
	}
	return stmt, nil
}

// ParseSelect parses src and requires it to be a SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: expected SELECT statement, got %T", stmt)
	}
	return sel, nil
}

func parseStatement(l *lexer) (Statement, error) {
	switch {
	case l.isKeyword("SELECT"):
		return parseSelect(l)
	case l.isKeyword("CREATE"):
		return parseCreate(l)
	case l.isKeyword("INSERT"):
		return parseInsert(l)
	case l.isKeyword("DELETE"):
		return parseDelete(l)
	case l.isKeyword("UPDATE"):
		return parseUpdate(l)
	default:
		return nil, fmt.Errorf("sqldb: unsupported statement starting with %q", l.tok.text)
	}
}

func parseCreate(l *lexer) (Statement, error) {
	l.next() // CREATE
	unique := l.acceptKeyword("UNIQUE")
	switch {
	case l.acceptKeyword("TABLE"):
		if unique {
			return nil, fmt.Errorf("sqldb: CREATE UNIQUE TABLE is not valid")
		}
		return parseCreateTable(l)
	case l.acceptKeyword("INDEX"):
		return parseCreateIndex(l, unique)
	default:
		return nil, fmt.Errorf("sqldb: expected TABLE or INDEX after CREATE")
	}
}

func parseCreateTable(l *lexer) (Statement, error) {
	name, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := l.expectSymbol("("); err != nil {
		return nil, err
	}
	schema := &Schema{Table: name}
	for {
		if l.acceptKeyword("PRIMARY") {
			if err := l.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := l.expectSymbol("("); err != nil {
				return nil, err
			}
			pk, err := l.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := l.expectSymbol(")"); err != nil {
				return nil, err
			}
			schema.PrimaryKey = pk
		} else {
			col, err := l.expectIdent()
			if err != nil {
				return nil, err
			}
			kind, err := parseType(l)
			if err != nil {
				return nil, err
			}
			schema.Columns = append(schema.Columns, Column{Name: col, Kind: kind})
			if l.acceptKeyword("PRIMARY") {
				if err := l.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				schema.PrimaryKey = col
			}
		}
		if l.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := l.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Schema: schema}, nil
}

func parseType(l *lexer) (sqlval.Kind, error) {
	name, err := l.expectIdent()
	if err != nil {
		return sqlval.KindNull, err
	}
	// Swallow optional length parameters: VARCHAR(25), DECIMAL(15,2).
	if l.acceptSymbol("(") {
		for !l.acceptSymbol(")") {
			if l.tok.kind == tokEOF {
				return sqlval.KindNull, fmt.Errorf("sqldb: unterminated type parameter list")
			}
			l.next()
		}
	}
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return sqlval.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return sqlval.KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return sqlval.KindString, nil
	case "DATE", "DATETIME", "TIMESTAMP":
		return sqlval.KindDate, nil
	default:
		return sqlval.KindNull, fmt.Errorf("sqldb: unknown type %s", name)
	}
}

func parseCreateIndex(l *lexer, unique bool) (Statement, error) {
	name, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := l.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := l.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := l.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: col, Unique: unique}, nil
}

func parseInsert(l *lexer) (Statement, error) {
	l.next() // INSERT
	if err := l.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := l.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	for {
		if err := l.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := parseExpr(l)
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !l.acceptSymbol(",") {
				break
			}
		}
		if err := l.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !l.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

func parseDelete(l *lexer) (Statement, error) {
	l.next() // DELETE
	if err := l.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if l.acceptKeyword("WHERE") {
		e, err := parseExpr(l)
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func parseUpdate(l *lexer) (Statement, error) {
	l.next() // UPDATE
	table, err := l.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := l.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := l.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := l.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := parseExpr(l)
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: e})
		if !l.acceptSymbol(",") {
			break
		}
	}
	if l.acceptKeyword("WHERE") {
		e, err := parseExpr(l)
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func parseSelect(l *lexer) (*SelectStmt, error) {
	l.next() // SELECT
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = l.acceptKeyword("DISTINCT")
	for {
		item, err := parseSelectItem(l)
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !l.acceptSymbol(",") {
			break
		}
	}
	if err := l.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var joinConds []Expr
	ref, err := parseTableRef(l)
	if err != nil {
		return nil, err
	}
	stmt.From = append(stmt.From, ref)
	for {
		if l.acceptSymbol(",") {
			ref, err := parseTableRef(l)
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			continue
		}
		if l.acceptKeyword("INNER") {
			if err := l.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !l.acceptKeyword("JOIN") {
			break
		}
		ref, err := parseTableRef(l)
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if err := l.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := parseExpr(l)
		if err != nil {
			return nil, err
		}
		joinConds = append(joinConds, cond)
	}
	if l.acceptKeyword("WHERE") {
		e, err := parseExpr(l)
		if err != nil {
			return nil, err
		}
		joinConds = append(joinConds, e)
	}
	stmt.Where = AndAll(joinConds)
	if l.acceptKeyword("GROUP") {
		if err := l.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := parseExpr(l)
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !l.acceptSymbol(",") {
				break
			}
		}
	}
	if l.acceptKeyword("HAVING") {
		e, err := parseExpr(l)
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if l.acceptKeyword("ORDER") {
		if err := l.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := parseExpr(l)
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if l.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				l.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !l.acceptSymbol(",") {
				break
			}
		}
	}
	if l.acceptKeyword("LIMIT") {
		if l.tok.kind != tokNumber {
			return nil, fmt.Errorf("sqldb: expected number after LIMIT")
		}
		n, err := strconv.Atoi(l.tok.text)
		if err != nil {
			return nil, fmt.Errorf("sqldb: bad LIMIT %q", l.tok.text)
		}
		stmt.Limit = n
		l.next()
	}
	return stmt, nil
}

func parseSelectItem(l *lexer) (SelectItem, error) {
	if l.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// alias.* requires two-token lookahead; probe by position.
	if l.tok.kind == tokIdent {
		save := *l
		name := l.tok.text
		l.next()
		if l.acceptSymbol(".") && l.acceptSymbol("*") {
			return SelectItem{Star: true, Table: name}, nil
		}
		*l = save
	}
	e, err := parseExpr(l)
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if l.acceptKeyword("AS") {
		alias, err := l.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if l.tok.kind == tokIdent && !isReservedAfterItem(l.tok.text) {
		item.Alias = l.tok.text
		l.next()
	}
	return item, nil
}

func isReservedAfterItem(word string) bool {
	switch strings.ToUpper(word) {
	case "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "AS", "AND", "OR", "ASC", "DESC", "BETWEEN", "IN", "NOT":
		return true
	}
	return false
}

func parseTableRef(l *lexer) (TableRef, error) {
	name, err := l.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if l.acceptKeyword("AS") {
		alias, err := l.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if l.tok.kind == tokIdent && !isReservedAfterItem(l.tok.text) {
		ref.Alias = l.tok.text
		l.next()
	}
	return ref, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     = orExpr
//	orExpr   = andExpr { OR andExpr }
//	andExpr  = notExpr { AND notExpr }
//	notExpr  = [NOT] cmpExpr
//	cmpExpr  = addExpr [ (= <> != < <= > >=) addExpr
//	                   | [NOT] BETWEEN addExpr AND addExpr
//	                   | [NOT] IN ( expr {, expr} ) ]
//	addExpr  = mulExpr { (+|-) mulExpr }
//	mulExpr  = unary { (*|/) unary }
//	unary    = [-] primary
//	primary  = literal | funcCall | columnRef | ( expr )
func parseExpr(l *lexer) (Expr, error) { return parseOr(l) }

func parseOr(l *lexer) (Expr, error) {
	left, err := parseAnd(l)
	if err != nil {
		return nil, err
	}
	for l.acceptKeyword("OR") {
		right, err := parseAnd(l)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func parseAnd(l *lexer) (Expr, error) {
	left, err := parseNot(l)
	if err != nil {
		return nil, err
	}
	for l.acceptKeyword("AND") {
		right, err := parseNot(l)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func parseNot(l *lexer) (Expr, error) {
	if l.acceptKeyword("NOT") {
		e, err := parseNot(l)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return parseComparison(l)
}

func parseComparison(l *lexer) (Expr, error) {
	left, err := parseAdd(l)
	if err != nil {
		return nil, err
	}
	not := false
	if l.isKeyword("NOT") {
		// NOT here must precede BETWEEN or IN.
		save := *l
		l.next()
		if !l.isKeyword("BETWEEN") && !l.isKeyword("IN") {
			*l = save
			return left, nil
		}
		not = true
	}
	switch {
	case l.acceptKeyword("IS"):
		isNot := l.acceptKeyword("NOT")
		if !l.acceptKeyword("NULL") {
			return nil, fmt.Errorf("sqldb: expected NULL after IS at offset %d", l.tok.pos)
		}
		return &IsNull{E: left, Not: isNot}, nil
	case l.acceptKeyword("BETWEEN"):
		lo, err := parseAdd(l)
		if err != nil {
			return nil, err
		}
		if err := l.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := parseAdd(l)
		if err != nil {
			return nil, err
		}
		return &Between{E: left, Lo: lo, Hi: hi, Not: not}, nil
	case l.acceptKeyword("IN"):
		if err := l.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := parseExpr(l)
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !l.acceptSymbol(",") {
				break
			}
		}
		if err := l.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InList{E: left, List: list, Not: not}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if l.acceptSymbol(op) {
			right, err := parseAdd(l)
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func parseAdd(l *lexer) (Expr, error) {
	left, err := parseMul(l)
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case l.acceptSymbol("+"):
			op = "+"
		case l.acceptSymbol("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := parseMul(l)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func parseMul(l *lexer) (Expr, error) {
	left, err := parseUnary(l)
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case l.acceptSymbol("*"):
			op = "*"
		case l.acceptSymbol("/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := parseUnary(l)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func parseUnary(l *lexer) (Expr, error) {
	if l.acceptSymbol("-") {
		e, err := parseUnary(l)
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch lit.Val.Kind() {
			case sqlval.KindInt:
				return &Literal{Val: sqlval.Int(-lit.Val.AsInt())}, nil
			case sqlval.KindFloat:
				return &Literal{Val: sqlval.Float(-lit.Val.AsFloat())}, nil
			}
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return parsePrimary(l)
}

func parsePrimary(l *lexer) (Expr, error) {
	switch l.tok.kind {
	case tokNumber:
		text := l.tok.text
		l.next()
		if strings.Contains(text, ".") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: bad number %q", text)
			}
			return &Literal{Val: sqlval.Float(f)}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqldb: bad number %q", text)
		}
		return &Literal{Val: sqlval.Int(n)}, nil
	case tokString:
		s := l.tok.text
		l.next()
		return &Literal{Val: sqlval.Str(s)}, nil
	case tokSymbol:
		if l.acceptSymbol("(") {
			e, err := parseExpr(l)
			if err != nil {
				return nil, err
			}
			if err := l.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("sqldb: unexpected symbol %q at offset %d", l.tok.text, l.tok.pos)
	case tokIdent:
		name := l.tok.text
		// DATE '1998-11-05' literal.
		if strings.EqualFold(name, "DATE") {
			save := *l
			l.next()
			if l.tok.kind == tokString {
				v, err := sqlval.ParseDate(l.tok.text)
				if err != nil {
					return nil, err
				}
				l.next()
				return &Literal{Val: v}, nil
			}
			*l = save
		}
		if strings.EqualFold(name, "NULL") {
			l.next()
			return &Literal{Val: sqlval.Null()}, nil
		}
		l.next()
		if l.acceptSymbol("(") {
			fn := &FuncCall{Name: strings.ToUpper(name)}
			if l.acceptSymbol("*") {
				fn.Star = true
			} else if !l.isSymbol(")") {
				for {
					a, err := parseExpr(l)
					if err != nil {
						return nil, err
					}
					fn.Args = append(fn.Args, a)
					if !l.acceptSymbol(",") {
						break
					}
				}
			}
			if err := l.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		if l.acceptSymbol(".") {
			col, err := l.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	default:
		return nil, fmt.Errorf("sqldb: unexpected end of expression")
	}
}
