package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"bestpeer/internal/sqlval"
)

// Stats records the physical work a statement performed. The engines
// feed these numbers into the virtual-time cost model (disk bytes read,
// result bytes produced) and the pay-as-you-go billing formulas.
type Stats struct {
	RowsScanned   int64
	BytesScanned  int64
	IndexUsed     bool
	RowsReturned  int64
	BytesReturned int64
}

// Add accumulates another stats record into s.
func (s *Stats) Add(o Stats) {
	s.RowsScanned += o.RowsScanned
	s.BytesScanned += o.BytesScanned
	s.IndexUsed = s.IndexUsed || o.IndexUsed
	s.RowsReturned += o.RowsReturned
	s.BytesReturned += o.BytesReturned
}

// Result is the outcome of a statement: column names and rows for
// SELECT, affected-row counts (in RowsReturned) for writes.
type Result struct {
	Columns []string
	Rows    []sqlval.Row
	Stats   Stats
}

// binding locates one FROM-clause table inside the joined row layout.
type binding struct {
	alias  string
	schema *Schema
	offset int
}

// frame is the name-resolution scope of a SELECT: the ordered bindings
// of its FROM clause.
type frame struct {
	bindings []binding
	width    int
}

func (f *frame) push(alias string, schema *Schema) {
	f.bindings = append(f.bindings, binding{alias: alias, schema: schema, offset: f.width})
	f.width += len(schema.Columns)
}

// resolve maps a column reference to its position in the joined row.
func (f *frame) resolve(ref *ColumnRef) (int, error) {
	if ref.Table != "" {
		for _, b := range f.bindings {
			if strings.EqualFold(b.alias, ref.Table) {
				ci := b.schema.ColumnIndex(ref.Column)
				if ci < 0 {
					return -1, fmt.Errorf("sqldb: no column %s in %s", ref.Column, ref.Table)
				}
				return b.offset + ci, nil
			}
		}
		return -1, fmt.Errorf("sqldb: unknown table %s", ref.Table)
	}
	found := -1
	for _, b := range f.bindings {
		if ci := b.schema.ColumnIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return -1, fmt.Errorf("sqldb: ambiguous column %s", ref.Column)
			}
			found = b.offset + ci
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("sqldb: unknown column %s", ref.Column)
	}
	return found, nil
}

// resolvable reports whether every column in e resolves in the frame.
func (f *frame) resolvable(e Expr) bool {
	for _, ref := range ColumnsIn(e) {
		if _, err := f.resolve(ref); err != nil {
			return false
		}
	}
	return true
}

// evalExpr evaluates a non-aggregate expression against a joined row.
func evalExpr(f *frame, e Expr, row sqlval.Row) (sqlval.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		pos, err := f.resolve(x)
		if err != nil {
			return sqlval.Null(), err
		}
		return row[pos], nil
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			lv, err := evalPred(f, x.L, row)
			if err != nil {
				return sqlval.Null(), err
			}
			if x.Op == "AND" && !lv {
				return sqlval.Int(0), nil
			}
			if x.Op == "OR" && lv {
				return sqlval.Int(1), nil
			}
			rv, err := evalPred(f, x.R, row)
			if err != nil {
				return sqlval.Null(), err
			}
			return boolVal(rv), nil
		case "+", "-", "*", "/":
			lv, err := evalExpr(f, x.L, row)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := evalExpr(f, x.R, row)
			if err != nil {
				return sqlval.Null(), err
			}
			switch x.Op {
			case "+":
				return sqlval.Add(lv, rv), nil
			case "-":
				return sqlval.Sub(lv, rv), nil
			case "*":
				return sqlval.Mul(lv, rv), nil
			default:
				return sqlval.Div(lv, rv), nil
			}
		default: // comparison
			lv, err := evalExpr(f, x.L, row)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := evalExpr(f, x.R, row)
			if err != nil {
				return sqlval.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqlval.Null(), nil // SQL unknown
			}
			return boolVal(compareCoerced(lv, rv, x.Op)), nil
		}
	case *Unary:
		v, err := evalExpr(f, x.E, row)
		if err != nil {
			return sqlval.Null(), err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return sqlval.Null(), nil
			}
			return boolVal(!truthy(v)), nil
		}
		return sqlval.Sub(sqlval.Int(0), v), nil
	case *Between:
		v, err := evalExpr(f, x.E, row)
		if err != nil {
			return sqlval.Null(), err
		}
		lo, err := evalExpr(f, x.Lo, row)
		if err != nil {
			return sqlval.Null(), err
		}
		hi, err := evalExpr(f, x.Hi, row)
		if err != nil {
			return sqlval.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return sqlval.Null(), nil
		}
		in := compareCoerced(v, lo, ">=") && compareCoerced(v, hi, "<=")
		return boolVal(in != x.Not), nil
	case *InList:
		v, err := evalExpr(f, x.E, row)
		if err != nil {
			return sqlval.Null(), err
		}
		if v.IsNull() {
			return sqlval.Null(), nil
		}
		for _, item := range x.List {
			iv, err := evalExpr(f, item, row)
			if err != nil {
				return sqlval.Null(), err
			}
			if !iv.IsNull() && compareCoerced(v, iv, "=") {
				return boolVal(!x.Not), nil
			}
		}
		return boolVal(x.Not), nil
	case *IsNull:
		v, err := evalExpr(f, x.E, row)
		if err != nil {
			return sqlval.Null(), err
		}
		return boolVal(v.IsNull() != x.Not), nil
	case *FuncCall:
		if isAggregateName(x.Name) {
			return sqlval.Null(), fmt.Errorf("sqldb: aggregate %s outside aggregation context", x.Name)
		}
		return sqlval.Null(), fmt.Errorf("sqldb: unknown function %s", x.Name)
	default:
		return sqlval.Null(), fmt.Errorf("sqldb: cannot evaluate %T", e)
	}
}

// evalPred evaluates e as a predicate; SQL unknown (NULL) is false.
func evalPred(f *frame, e Expr, row sqlval.Row) (bool, error) {
	v, err := evalExpr(f, e, row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return truthy(v), nil
}

func truthy(v sqlval.Value) bool {
	switch v.Kind() {
	case sqlval.KindInt:
		return v.AsInt() != 0
	case sqlval.KindFloat:
		return v.AsFloat() != 0
	default:
		return !v.IsNull()
	}
}

func boolVal(b bool) sqlval.Value {
	if b {
		return sqlval.Int(1)
	}
	return sqlval.Int(0)
}

// compareCoerced compares values under op, coercing a string literal to
// a date when compared against a DATE column (so WHERE d > '1998-09-01'
// works without the DATE keyword).
func compareCoerced(a, b sqlval.Value, op string) bool {
	if a.Kind() == sqlval.KindDate && b.Kind() == sqlval.KindString {
		if d, err := sqlval.ParseDate(b.AsString()); err == nil {
			b = d
		}
	}
	if b.Kind() == sqlval.KindDate && a.Kind() == sqlval.KindString {
		if d, err := sqlval.ParseDate(a.AsString()); err == nil {
			a = d
		}
	}
	c := sqlval.Compare(a, b)
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

// literalOf returns the constant value of e if it is a literal (possibly
// a string that should coerce to the column's kind at comparison time).
func literalOf(e Expr) (sqlval.Value, bool) {
	lit, ok := e.(*Literal)
	if !ok {
		return sqlval.Null(), false
	}
	return lit.Val, true
}

// accessPath describes how to fetch one table's rows: either a full scan
// or an index equality/range probe discovered from the conjuncts.
type accessPath struct {
	index *Index
	eq    sqlval.Value
	useEq bool
	lo    sqlval.Value
	hi    sqlval.Value
	loInc bool
	hiInc bool
}

// chooseAccessPath inspects the single-table conjuncts and selects the
// best index probe: equality beats range, range beats full scan.
func chooseAccessPath(t *Table, alias string, conjuncts []Expr) accessPath {
	var best accessPath
	f := &frame{}
	f.push(alias, t.Schema())
	for _, c := range conjuncts {
		var col string
		var op string
		var val sqlval.Value
		switch x := c.(type) {
		case *Binary:
			ref, okL := x.L.(*ColumnRef)
			lit, okR := literalOf(x.R)
			if okL && okR {
				col, op, val = ref.Column, x.Op, lit
			} else if ref2, ok2 := x.R.(*ColumnRef); ok2 {
				if lit2, okL2 := literalOf(x.L); okL2 {
					col, val = ref2.Column, lit2
					op = flipOp(x.Op)
				}
			}
			if col == "" {
				continue
			}
			if _, err := f.resolve(&ColumnRef{Column: col}); err != nil {
				continue
			}
			idx := t.IndexOn(col)
			if idx == nil {
				continue
			}
			val = coerceForColumn(t, col, val)
			switch op {
			case "=":
				best = accessPath{index: idx, eq: val, useEq: true}
				return best
			case ">":
				best = mergeRange(best, idx, val, sqlval.Null(), false, false)
			case ">=":
				best = mergeRange(best, idx, val, sqlval.Null(), true, false)
			case "<":
				best = mergeRange(best, idx, sqlval.Null(), val, false, false)
			case "<=":
				best = mergeRange(best, idx, sqlval.Null(), val, false, true)
			}
		case *Between:
			ref, ok := x.E.(*ColumnRef)
			if !ok || x.Not {
				continue
			}
			lo, okLo := literalOf(x.Lo)
			hi, okHi := literalOf(x.Hi)
			if !okLo || !okHi {
				continue
			}
			if _, err := f.resolve(&ColumnRef{Column: ref.Column}); err != nil {
				continue
			}
			idx := t.IndexOn(ref.Column)
			if idx == nil {
				continue
			}
			lo = coerceForColumn(t, ref.Column, lo)
			hi = coerceForColumn(t, ref.Column, hi)
			best = mergeRange(best, idx, lo, hi, true, true)
		}
	}
	return best
}

// coerceForColumn converts a literal to the column's declared kind so
// index probes compare correctly (dates given as strings, ints vs floats).
func coerceForColumn(t *Table, col string, v sqlval.Value) sqlval.Value {
	ci := t.Schema().ColumnIndex(col)
	if ci < 0 {
		return v
	}
	cv, err := coerce(v, t.Schema().Columns[ci].Kind)
	if err != nil {
		return v
	}
	return cv
}

// mergeRange tightens the access path with a new bound on idx. Bounds on
// a different index than the current one are kept only if no path exists
// yet (one index per probe).
func mergeRange(cur accessPath, idx *Index, lo, hi sqlval.Value, loInc, hiInc bool) accessPath {
	if cur.index != nil && cur.index != idx {
		return cur
	}
	if cur.index == nil {
		return accessPath{index: idx, lo: lo, hi: hi, loInc: loInc, hiInc: hiInc}
	}
	if !lo.IsNull() && (cur.lo.IsNull() || sqlval.Compare(lo, cur.lo) > 0) {
		cur.lo, cur.loInc = lo, loInc
	}
	if !hi.IsNull() && (cur.hi.IsNull() || sqlval.Compare(hi, cur.hi) < 0) {
		cur.hi, cur.hiInc = hi, hiInc
	}
	return cur
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// fetchRows materializes one table's rows using the access path the
// cost model chose, applying the table's residual conjuncts, and
// charges scan statistics.
func fetchRows(t *Table, alias string, conjuncts []Expr, path accessPath, stats *Stats) ([]sqlval.Row, error) {
	f := &frame{}
	f.push(alias, t.Schema())

	filter := func(row sqlval.Row) (bool, error) {
		for _, c := range conjuncts {
			ok, err := evalPred(f, c, row)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	var out []sqlval.Row
	if path.index != nil {
		stats.IndexUsed = true
		var ids []int
		if path.useEq {
			ids = path.index.Lookup(path.eq)
		} else {
			ids = path.index.Range(path.lo, path.hi, path.loInc, path.hiInc)
		}
		for _, id := range ids {
			row := t.Row(id)
			if row == nil {
				continue
			}
			stats.RowsScanned++
			stats.BytesScanned += int64(t.RowSize(id))
			ok, err := filter(row)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, row)
			}
		}
		return out, nil
	}

	var ferr error
	t.Scan(func(id int, row sqlval.Row) bool {
		stats.RowsScanned++
		stats.BytesScanned += int64(t.RowSize(id))
		ok, err := filter(row)
		if err != nil {
			ferr = err
			return false
		}
		if ok {
			out = append(out, row)
		}
		return true
	})
	return out, ferr
}

// splitConjuncts partitions the WHERE conjuncts into per-table filters
// (all columns resolve within a single FROM entry) and cross-table
// conditions.
func splitConjuncts(where Expr, refs []TableRef, schemas []*Schema) (perTable [][]Expr, cross []Expr) {
	perTable = make([][]Expr, len(refs))
	for _, c := range Conjuncts(where) {
		placed := false
		for i, ref := range refs {
			f := &frame{}
			f.push(ref.Alias, schemas[i])
			if f.resolvable(c) {
				perTable[i] = append(perTable[i], c)
				placed = true
				break
			}
		}
		if !placed {
			cross = append(cross, c)
		}
	}
	return perTable, cross
}

// equiJoinKeys finds equality conjuncts joining the accumulated frame
// (left) with the table being added (right), returning the paired key
// expressions and the remaining unused conditions.
func equiJoinKeys(conds []Expr, left *frame, right *frame) (lkeys, rkeys []Expr, rest []Expr) {
	for _, c := range conds {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			rest = append(rest, c)
			continue
		}
		switch {
		case left.resolvable(b.L) && right.resolvable(b.R):
			lkeys = append(lkeys, b.L)
			rkeys = append(rkeys, b.R)
		case left.resolvable(b.R) && right.resolvable(b.L):
			lkeys = append(lkeys, b.R)
			rkeys = append(rkeys, b.L)
		default:
			rest = append(rest, c)
		}
	}
	return lkeys, rkeys, rest
}

func hashKey(f *frame, keys []Expr, row sqlval.Row) (uint64, error) {
	var h uint64 = 1469598103934665603
	for _, k := range keys {
		v, err := evalExpr(f, k, row)
		if err != nil {
			return 0, err
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, nil
}

func keysEqual(lf *frame, lkeys []Expr, lrow sqlval.Row, rf *frame, rkeys []Expr, rrow sqlval.Row) (bool, error) {
	for i := range lkeys {
		lv, err := evalExpr(lf, lkeys[i], lrow)
		if err != nil {
			return false, err
		}
		rv, err := evalExpr(rf, rkeys[i], rrow)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() || !sqlval.Equal(lv, rv) {
			return false, nil
		}
	}
	return true, nil
}

// executeSelect runs a SELECT against the database's tables.
func (db *DB) executeSelect(stmt *SelectStmt) (*Result, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqldb: SELECT without FROM")
	}
	tables := make([]*Table, len(stmt.From))
	schemas := make([]*Schema, len(stmt.From))
	for i, ref := range stmt.From {
		t := db.table(ref.Table)
		if t == nil {
			return nil, fmt.Errorf("sqldb: unknown table %s", ref.Table)
		}
		tables[i] = t
		schemas[i] = t.Schema()
	}

	var stats Stats
	perTable, cross := splitConjuncts(stmt.Where, stmt.From, schemas)
	order := db.joinOrder(tables, stmt.From, schemas, perTable, cross)

	// Stars expand in FROM order no matter how the cost model reorders
	// execution; the generated qualified references resolve by name in
	// the execution frame.
	starF := &frame{}
	for i, ref := range stmt.From {
		starF.push(ref.Alias, schemas[i])
	}

	// Build the joined row set left-to-right in cost-model join order.
	first := order[0]
	cur := &frame{}
	cur.push(stmt.From[first].Alias, schemas[first])
	choice := db.planScan(tables[first], stmt.From[first].Alias, perTable[first])
	db.access.handle(schemas[first].Table).record(choice.path.index != nil)
	rows, err := fetchRows(tables[first], stmt.From[first].Alias, perTable[first], choice.path, &stats)
	if err != nil {
		return nil, err
	}
	choice.observeEstimate(int64(len(rows)))
	pending := cross

	for _, ti := range order[1:] {
		rf := &frame{}
		rf.push(stmt.From[ti].Alias, schemas[ti])
		rchoice := db.planScan(tables[ti], stmt.From[ti].Alias, perTable[ti])
		db.access.handle(schemas[ti].Table).record(rchoice.path.index != nil)
		rrows, err := fetchRows(tables[ti], stmt.From[ti].Alias, perTable[ti], rchoice.path, &stats)
		if err != nil {
			return nil, err
		}
		rchoice.observeEstimate(int64(len(rrows)))
		lkeys, rkeys, rest := equiJoinKeys(pending, cur, rf)

		next := &frame{}
		next.bindings = append(next.bindings, cur.bindings...)
		next.width = cur.width
		next.push(stmt.From[ti].Alias, schemas[ti])

		var joined []sqlval.Row
		if len(lkeys) > 0 {
			// Hash join: build on the smaller side conceptually; build on
			// right which is a base table fetch.
			build := make(map[uint64][]sqlval.Row, len(rrows))
			for _, rr := range rrows {
				h, err := hashKey(rf, rkeys, rr)
				if err != nil {
					return nil, err
				}
				build[h] = append(build[h], rr)
			}
			for _, lr := range rows {
				h, err := hashKey(cur, lkeys, lr)
				if err != nil {
					return nil, err
				}
				for _, rr := range build[h] {
					eq, err := keysEqual(cur, lkeys, lr, rf, rkeys, rr)
					if err != nil {
						return nil, err
					}
					if eq {
						nr := make(sqlval.Row, 0, next.width)
						nr = append(nr, lr...)
						nr = append(nr, rr...)
						joined = append(joined, nr)
					}
				}
			}
		} else {
			for _, lr := range rows {
				for _, rr := range rrows {
					nr := make(sqlval.Row, 0, next.width)
					nr = append(nr, lr...)
					nr = append(nr, rr...)
					joined = append(joined, nr)
				}
			}
		}

		// Apply any pending conditions that became resolvable.
		var still []Expr
		filtered := joined[:0]
		var applicable []Expr
		for _, c := range rest {
			if next.resolvable(c) {
				applicable = append(applicable, c)
			} else {
				still = append(still, c)
			}
		}
		if len(applicable) > 0 {
			for _, row := range joined {
				keep := true
				for _, c := range applicable {
					ok, err := evalPred(next, c, row)
					if err != nil {
						return nil, err
					}
					if !ok {
						keep = false
						break
					}
				}
				if keep {
					filtered = append(filtered, row)
				}
			}
			joined = filtered
		}
		cur = next
		rows = joined
		pending = still
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("sqldb: unresolvable predicate %s", AndAll(pending))
	}

	res, err := project(cur, starF, stmt, rows)
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	res.Stats.RowsReturned = int64(len(res.Rows))
	for _, r := range res.Rows {
		res.Stats.BytesReturned += int64(r.EncodedSize())
	}
	return res, nil
}

// project applies grouping/aggregation, HAVING, ORDER BY, LIMIT, and the
// SELECT list to the joined rows. starF is the FROM-order frame used
// only to expand stars (f may be permuted by the join-order model).
func project(f, starF *frame, stmt *SelectStmt, rows []sqlval.Row) (*Result, error) {
	grouped := len(stmt.GroupBy) > 0
	for _, item := range stmt.Items {
		if !item.Star && HasAggregate(item.Expr) {
			grouped = true
		}
	}
	if stmt.Having != nil {
		grouped = true
	}
	if grouped {
		return projectGrouped(f, starF, stmt, rows)
	}

	cols, exprs, err := expandItems(starF, stmt.Items)
	if err != nil {
		return nil, err
	}
	type sortable struct {
		out  sqlval.Row
		keys sqlval.Row
	}
	outs := make([]sortable, 0, len(rows))
	for _, row := range rows {
		out := make(sqlval.Row, len(exprs))
		for i, e := range exprs {
			v, err := evalExpr(f, e, row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		var keys sqlval.Row
		for _, o := range stmt.OrderBy {
			v, err := evalExpr(f, o.Expr, row)
			if err != nil {
				// Allow ORDER BY on a select alias.
				v2, err2 := orderByAlias(o.Expr, cols, out)
				if err2 != nil {
					return nil, err
				}
				v = v2
			}
			keys = append(keys, v)
		}
		outs = append(outs, sortable{out: out, keys: keys})
	}
	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			return lessKeys(outs[i].keys, outs[j].keys, stmt.OrderBy)
		})
	}
	res := &Result{Columns: cols}
	seen := newDistinctFilter(stmt.Distinct)
	for _, s := range outs {
		if !seen.admit(s.out) {
			continue
		}
		if stmt.Limit >= 0 && len(res.Rows) >= stmt.Limit {
			break
		}
		res.Rows = append(res.Rows, s.out)
	}
	return res, nil
}

// distinctFilter deduplicates output rows for SELECT DISTINCT; a nil
// filter admits everything.
type distinctFilter struct {
	seen map[string]bool
}

func newDistinctFilter(enabled bool) *distinctFilter {
	if !enabled {
		return nil
	}
	return &distinctFilter{seen: make(map[string]bool)}
}

// admit reports whether the row should be emitted, recording it.
func (d *distinctFilter) admit(row sqlval.Row) bool {
	if d == nil {
		return true
	}
	key := row.String()
	if d.seen[key] {
		return false
	}
	d.seen[key] = true
	return true
}

func orderByAlias(e Expr, cols []string, out sqlval.Row) (sqlval.Value, error) {
	ref, ok := e.(*ColumnRef)
	if !ok || ref.Table != "" {
		return sqlval.Null(), fmt.Errorf("sqldb: cannot order by %s", e)
	}
	for i, c := range cols {
		if strings.EqualFold(c, ref.Column) {
			return out[i], nil
		}
	}
	return sqlval.Null(), fmt.Errorf("sqldb: cannot order by %s", e)
}

func lessKeys(a, b sqlval.Row, order []OrderItem) bool {
	for i := range order {
		c := sqlval.Compare(a[i], b[i])
		if c == 0 {
			continue
		}
		if order[i].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// expandItems resolves the SELECT list into output column names and the
// expressions producing them (stars expanded from the frame).
func expandItems(f *frame, items []SelectItem) ([]string, []Expr, error) {
	var cols []string
	var exprs []Expr
	for _, item := range items {
		if item.Star {
			for _, b := range f.bindings {
				if item.Table != "" && !strings.EqualFold(item.Table, b.alias) {
					continue
				}
				for _, c := range b.schema.Columns {
					cols = append(cols, c.Name)
					exprs = append(exprs, &ColumnRef{Table: b.alias, Column: c.Name})
				}
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if ref, ok := item.Expr.(*ColumnRef); ok {
				name = ref.Column
			} else {
				name = item.Expr.String()
			}
		}
		cols = append(cols, name)
		exprs = append(exprs, item.Expr)
	}
	return cols, exprs, nil
}
