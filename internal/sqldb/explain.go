package sqldb

import (
	"fmt"
	"strings"
)

// EXPLAIN surface: ExplainSelect compiles a SELECT the same way the
// executor would — cost-based join order, per-scan access-path choice,
// batch compilation — and reports the choices together with estimated
// vs actual cardinalities (the scans are executed to count actuals, so
// this is EXPLAIN ANALYZE at scan granularity). bpsql's .plan dot
// command and the peer.plan verb render it.

// ExplainScan describes one table access of a compiled plan, in
// execution order.
type ExplainScan struct {
	Table      string
	Alias      string
	Access     string // index-eq(col), index-range(col), full-scan
	Demoted    bool   // range probe rejected: estimated selectivity too high
	EstRows    float64
	ActualRows int64
}

// ExplainPlan is the explainable shape of one SELECT.
type ExplainPlan struct {
	SQL       string
	Note      string // set when the compiled path is unavailable
	Compiled  bool
	Batch     bool // vectorized batch twin compiled alongside
	JoinOrder []string
	Scans     []ExplainScan
}

// ExplainSelect parses and compiles sql, reporting the plan the executor
// would run: join order, access paths, estimated and actual per-scan
// cardinalities, and whether the statement runs on the vectorized batch
// path. The statement is not fully executed — only its scans are, to
// obtain actual filtered cardinalities.
func (db *DB) ExplainSelect(sql string) (*ExplainPlan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: EXPLAIN supports SELECT statements only")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, ref := range sel.From {
		if t := db.table(ref.Table); t != nil {
			db.ensureStats(t)
		}
	}
	ep := &ExplainPlan{SQL: sql}
	if !CompileEnabled() {
		ep.Note = "compiled layer disabled; interpreter executes in FROM order"
		return ep, nil
	}
	p, cerr := db.compileSelect(sel)
	if cerr != nil {
		ep.Note = fmt.Sprintf("not compilable (%v); interpreter fallback", cerr)
		return ep, nil
	}
	ep.Compiled = true
	ep.Batch = p.batch != nil
	for _, sp := range p.scans {
		es := ExplainScan{
			Table:      sp.table.Schema().Table,
			Alias:      sp.alias,
			Access:     sp.accessDesc(),
			Demoted:    sp.choice.demoted,
			EstRows:    sp.choice.estRows,
			ActualRows: -1,
		}
		if rows, ferr := sp.fetch(&Stats{}); ferr == nil {
			es.ActualRows = int64(len(rows))
		}
		ep.JoinOrder = append(ep.JoinOrder, sp.alias)
		ep.Scans = append(ep.Scans, es)
	}
	return ep, nil
}

// accessDesc renders the scan's access path choice.
func (s *scanPlan) accessDesc() string {
	path := s.choice.path
	switch {
	case path.index != nil && path.useEq:
		return fmt.Sprintf("index-eq(%s)", path.index.Column)
	case path.index != nil:
		return fmt.Sprintf("index-range(%s)", path.index.Column)
	default:
		return "full-scan"
	}
}

// Render formats the plan for terminals (bpsql .plan, peer.plan verb).
func (ep *ExplainPlan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", ep.SQL)
	if ep.Note != "" {
		fmt.Fprintf(&b, "  %s\n", ep.Note)
		return b.String()
	}
	mode := "row-compiled closures"
	if ep.Batch && BatchEnabled() {
		mode = fmt.Sprintf("vectorized batch (%d-row)", batchSize)
	} else if ep.Batch {
		mode = "row-compiled closures (batch compiled but disabled)"
	}
	fmt.Fprintf(&b, "  execution: %s\n", mode)
	if len(ep.JoinOrder) > 1 {
		fmt.Fprintf(&b, "  join order: %s\n", strings.Join(ep.JoinOrder, " -> "))
	}
	for _, s := range ep.Scans {
		name := s.Table
		if s.Alias != "" && !strings.EqualFold(s.Alias, s.Table) {
			name = fmt.Sprintf("%s (%s)", s.Table, s.Alias)
		}
		fmt.Fprintf(&b, "  scan %-20s %-20s est=%-10.1f actual=%d", name, s.Access, s.EstRows, s.ActualRows)
		if s.Demoted {
			b.WriteString("  [range probe demoted: low estimated selectivity]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
