package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers are kept verbatim; keyword matching is case-insensitive
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src string
	pos int
	tok token
	err error
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.next()
	return l
}

// next advances to the following token.
func (l *lexer) next() {
	if l.err != nil {
		return
	}
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		l.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: tokIdent, text: l.src[start:l.pos], pos: start}
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' {
				if seenDot {
					break
				}
				seenDot = true
			} else if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		l.tok = token{kind: tokNumber, text: l.src[start:l.pos], pos: start}
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				l.err = fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
				l.tok = token{kind: tokEOF, pos: l.pos}
				return
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote inside a string.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		l.tok = token{kind: tokString, text: sb.String(), pos: start}
	default:
		// Two-character operators first.
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			switch two {
			case "<=", ">=", "<>", "!=":
				l.pos += 2
				l.tok = token{kind: tokSymbol, text: two, pos: start}
				return
			}
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', ';', '.':
			l.pos++
			l.tok = token{kind: tokSymbol, text: string(c), pos: start}
		default:
			l.err = fmt.Errorf("sqldb: unexpected character %q at offset %d", c, l.pos)
			l.tok = token{kind: tokEOF, pos: l.pos}
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (l *lexer) isKeyword(kw string) bool {
	return l.tok.kind == tokIdent && strings.EqualFold(l.tok.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (l *lexer) acceptKeyword(kw string) bool {
	if l.isKeyword(kw) {
		l.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or records an error.
func (l *lexer) expectKeyword(kw string) error {
	if !l.acceptKeyword(kw) {
		return fmt.Errorf("sqldb: expected %s at offset %d (got %q)", kw, l.tok.pos, l.tok.text)
	}
	return nil
}

// isSymbol reports whether the current token is the given symbol.
func (l *lexer) isSymbol(sym string) bool {
	return l.tok.kind == tokSymbol && l.tok.text == sym
}

// acceptSymbol consumes the symbol if present.
func (l *lexer) acceptSymbol(sym string) bool {
	if l.isSymbol(sym) {
		l.next()
		return true
	}
	return false
}

// expectSymbol consumes the symbol or records an error.
func (l *lexer) expectSymbol(sym string) error {
	if !l.acceptSymbol(sym) {
		return fmt.Errorf("sqldb: expected %q at offset %d (got %q)", sym, l.tok.pos, l.tok.text)
	}
	return nil
}

// expectIdent consumes and returns an identifier.
func (l *lexer) expectIdent() (string, error) {
	if l.tok.kind != tokIdent {
		return "", fmt.Errorf("sqldb: expected identifier at offset %d (got %q)", l.tok.pos, l.tok.text)
	}
	name := l.tok.text
	l.next()
	return name, nil
}
