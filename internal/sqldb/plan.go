package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// A selectPlan is a SELECT compiled once against the current schema:
// access paths chosen, every column reference resolved to a row offset,
// and all predicates/projections/join keys/ORDER BY keys turned into
// closures. Plans are stateless at run time (per-run Stats and sinks),
// so a cached plan can serve concurrent readers under db.mu.RLock.
//
// Single-table statements — the shape of every subquery the engines
// ship to data owners — run as a fused scan→filter→project stream with
// no intermediate []sqlval.Row; joins materialize per-table row sets
// preallocated from index-cardinality estimates.
type selectPlan struct {
	stmt  *SelectStmt
	order []int // scans[i] reads stmt.From[order[i]] (cost-chosen join order)
	scans []*scanPlan
	joins []*joinPlan // joins[i] adds scans[i+1] onto the accumulated rows
	proj  *projPlan
	batch *batchPlan // vectorized twin; nil when any piece is not batch-compilable
}

var planCompiles = telemetry.Default.Counter("sqldb_plans_compiled_total")

// scanPlan fetches one table's rows: the costed access-path choice plus
// the table's fused residual filter. Statistics charging is identical to
// fetchRows; the choice's estimate is compared with the actual row count
// on every run to feed the cost-model misprediction histogram.
type scanPlan struct {
	table  *Table
	alias  string
	choice scanChoice
	filter compiledPred // nil = no per-table conjuncts
	// acc is the table's bounded access-counter handle, resolved once at
	// compile time and charged on every execution (row and batch paths).
	acc *TableAccess
}

// joinPlan hash-joins the accumulated left rows with one table's rows.
type joinPlan struct {
	width    int
	lkeys    []compiledExpr // over the accumulated (left) layout
	rkeys    []compiledExpr // over the right table's layout
	lhash    func(sqlval.Row) (uint64, error)
	rhash    func(sqlval.Row) (uint64, error)
	residual compiledPred // cross conditions resolvable at this level
}

// compileSelect builds a selectPlan for stmt. Callers hold db.mu (read
// or write). Compile-time failures (unknown columns, unknown functions,
// unresolvable predicates) are reported up front; the caller falls back
// to the interpreter to keep row-at-a-time error semantics identical.
func (db *DB) compileSelect(stmt *SelectStmt) (*selectPlan, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqldb: SELECT without FROM")
	}
	tables := make([]*Table, len(stmt.From))
	schemas := make([]*Schema, len(stmt.From))
	for i, ref := range stmt.From {
		t := db.table(ref.Table)
		if t == nil {
			return nil, fmt.Errorf("sqldb: unknown table %s", ref.Table)
		}
		tables[i] = t
		schemas[i] = t.Schema()
	}
	perTable, cross := splitConjuncts(stmt.Where, stmt.From, schemas)
	order := db.joinOrder(tables, stmt.From, schemas, perTable, cross)

	// Stars expand in FROM order regardless of the cost-chosen execution
	// order, so results are identical whichever order the cost model picks.
	starF := &frame{}
	for i, ref := range stmt.From {
		starF.push(ref.Alias, schemas[i])
	}

	p := &selectPlan{stmt: stmt, order: order}
	batchOK := true
	var bscans []*bscan
	for _, ti := range order {
		ref := stmt.From[ti]
		f := &frame{}
		f.push(ref.Alias, schemas[ti])
		filter, err := compileFilter(f, perTable[ti])
		if err != nil {
			return nil, err
		}
		p.scans = append(p.scans, &scanPlan{
			table:  tables[ti],
			alias:  ref.Alias,
			choice: db.planScan(tables[ti], ref.Alias, perTable[ti]),
			filter: filter,
			acc:    db.access.handle(tables[ti].Schema().Table),
		})
		if batchOK {
			var ns, nps int
			bc := newBcomp(f, &ns, &nps)
			bf, berr := bc.compileFilter(perTable[ti])
			if berr != nil {
				batchOK = false
			} else {
				bscans = append(bscans, &bscan{kinds: bc.kinds, filter: bf, filterOffs: bc.offsets()})
			}
		}
	}

	cur := &frame{}
	cur.push(stmt.From[order[0]].Alias, schemas[order[0]])
	pending := cross
	var bjoins []*bjoin
	for k := 1; k < len(order); k++ {
		ti := order[k]
		rf := &frame{}
		rf.push(stmt.From[ti].Alias, schemas[ti])
		lkeys, rkeys, rest := equiJoinKeys(pending, cur, rf)

		next := &frame{}
		next.bindings = append(next.bindings, cur.bindings...)
		next.width = cur.width
		next.push(stmt.From[ti].Alias, schemas[ti])

		var applicable, still []Expr
		for _, c := range rest {
			if next.resolvable(c) {
				applicable = append(applicable, c)
			} else {
				still = append(still, c)
			}
		}
		jp := &joinPlan{width: next.width}
		var err error
		if jp.lkeys, err = compileExprs(cur, lkeys); err != nil {
			return nil, err
		}
		if jp.rkeys, err = compileExprs(rf, rkeys); err != nil {
			return nil, err
		}
		jp.lhash = compileHash(jp.lkeys)
		jp.rhash = compileHash(jp.rkeys)
		if jp.residual, err = compileFilter(next, applicable); err != nil {
			return nil, err
		}
		p.joins = append(p.joins, jp)
		if batchOK {
			bj := compileBatchJoin(cur, rf, lkeys, rkeys)
			// A nil bjoin with keys present means a key failed to batch-
			// compile; without keys it's a cross join and the row joinPlan
			// runs that level while the rest of the plan stays batched.
			if bj == nil && len(lkeys) > 0 {
				batchOK = false
			} else {
				bjoins = append(bjoins, bj)
			}
		}
		cur = next
		pending = still
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("sqldb: unresolvable predicate %s", AndAll(pending))
	}

	proj, err := newProjPlan(cur, starF, stmt)
	if err != nil {
		return nil, err
	}
	p.proj = proj
	if batchOK && proj.bp != nil {
		p.batch = &batchPlan{p: p, scans: bscans, joins: bjoins}
		batchPlanCompiles.Inc()
	} else {
		batchFallbacks.Inc()
	}
	planCompiles.Inc()
	return p, nil
}

// compileBatchJoin builds the batch key programs for one join level, or
// nil when the level has no equi-keys (cross join) or a key expression
// is not batch-compilable.
func compileBatchJoin(cur, rf *frame, lkeys, rkeys []Expr) *bjoin {
	if len(lkeys) == 0 {
		return nil
	}
	var lns, lnps, rns, rnps int
	lc := newBcomp(cur, &lns, &lnps)
	rc := newBcomp(rf, &rns, &rnps)
	bj := &bjoin{}
	for _, e := range lkeys {
		bv, err := lc.compileValue(e)
		if err != nil {
			return nil
		}
		bj.lkeys = append(bj.lkeys, bv)
	}
	for _, e := range rkeys {
		bv, err := rc.compileValue(e)
		if err != nil {
			return nil
		}
		bj.rkeys = append(bj.rkeys, bv)
	}
	bj.loffs, bj.roffs = lc.offsets(), rc.offsets()
	bj.lkinds = lc.kinds
	return bj
}

// run executes the plan. Callers hold db.mu.RLock.
func (p *selectPlan) run() (*Result, error) {
	if p.batch != nil && BatchEnabled() {
		res, ok, err := p.batch.run()
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
		// Runtime column-kind mismatch: rerun this statement in row mode.
		batchFallbacks.Inc()
	}
	var stats Stats
	if len(p.scans) == 1 {
		// Streaming pipeline: scan rows flow straight into the
		// projection/aggregation sink.
		sink := p.proj.newSink(0)
		var actual int64
		if err := p.scans[0].stream(&stats, func(row sqlval.Row) error {
			actual++
			return sink.add(row)
		}); err != nil {
			return nil, err
		}
		p.scans[0].choice.observeEstimate(actual)
		res, err := sink.finish()
		if err != nil {
			return nil, err
		}
		finishStats(res, stats)
		return res, nil
	}

	rows, err := p.scans[0].fetch(&stats)
	if err != nil {
		return nil, err
	}
	p.scans[0].choice.observeEstimate(int64(len(rows)))
	for i, jp := range p.joins {
		rrows, err := p.scans[i+1].fetch(&stats)
		if err != nil {
			return nil, err
		}
		p.scans[i+1].choice.observeEstimate(int64(len(rrows)))
		rows, err = jp.join(rows, rrows)
		if err != nil {
			return nil, err
		}
	}
	res, err := p.proj.runRows(rows)
	if err != nil {
		return nil, err
	}
	finishStats(res, stats)
	return res, nil
}

func finishStats(res *Result, stats Stats) {
	res.Stats = stats
	res.Stats.RowsReturned = int64(len(res.Rows))
	for _, r := range res.Rows {
		res.Stats.BytesReturned += int64(r.EncodedSize())
	}
}

// stream visits the table's rows through the access path and filter,
// charging scan statistics exactly like fetchRows, without materializing
// an intermediate slice.
func (s *scanPlan) stream(stats *Stats, yield func(sqlval.Row) error) error {
	t := s.table
	s.acc.record(s.choice.path.index != nil)
	if s.choice.path.index != nil {
		stats.IndexUsed = true
		for _, id := range s.ids() {
			row := t.Row(id)
			if row == nil {
				continue
			}
			stats.RowsScanned++
			stats.BytesScanned += int64(t.RowSize(id))
			if s.filter != nil {
				ok, err := s.filter(row)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			if err := yield(row); err != nil {
				return err
			}
		}
		return nil
	}
	var ferr error
	t.Scan(func(id int, row sqlval.Row) bool {
		stats.RowsScanned++
		stats.BytesScanned += int64(t.RowSize(id))
		if s.filter != nil {
			ok, err := s.filter(row)
			if err != nil {
				ferr = err
				return false
			}
			if !ok {
				return true
			}
		}
		if err := yield(row); err != nil {
			ferr = err
			return false
		}
		return true
	})
	return ferr
}

// ids evaluates the index probe, returning candidate row IDs.
func (s *scanPlan) ids() []int {
	path := s.choice.path
	if path.useEq {
		return path.index.Lookup(path.eq)
	}
	return path.index.Range(path.lo, path.hi, path.loInc, path.hiInc)
}

// fetch materializes the table's filtered rows, preallocating from the
// costed cardinality estimate.
func (s *scanPlan) fetch(stats *Stats) ([]sqlval.Row, error) {
	if s.choice.path.index != nil {
		s.acc.record(true)
		stats.IndexUsed = true
		ids := s.ids()
		out := make([]sqlval.Row, 0, len(ids))
		for _, id := range ids {
			row := s.table.Row(id)
			if row == nil {
				continue
			}
			stats.RowsScanned++
			stats.BytesScanned += int64(s.table.RowSize(id))
			if s.filter != nil {
				ok, err := s.filter(row)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out = append(out, row)
		}
		return out, nil
	}
	out := make([]sqlval.Row, 0, int(s.choice.estRows)+8)
	err := s.stream(stats, func(row sqlval.Row) error {
		out = append(out, row)
		return nil
	})
	return out, err
}

// join hash-joins (or cross-joins) left rows with right rows and applies
// the level's residual predicate in place.
func (j *joinPlan) join(lrows, rrows []sqlval.Row) ([]sqlval.Row, error) {
	var joined []sqlval.Row
	if len(j.lkeys) > 0 {
		build := make(map[uint64][]sqlval.Row, len(rrows))
		for _, rr := range rrows {
			h, err := j.rhash(rr)
			if err != nil {
				return nil, err
			}
			build[h] = append(build[h], rr)
		}
		joined = make([]sqlval.Row, 0, len(lrows))
		for _, lr := range lrows {
			h, err := j.lhash(lr)
			if err != nil {
				return nil, err
			}
			for _, rr := range build[h] {
				eq := true
				for i := range j.lkeys {
					lv, err := j.lkeys[i](lr)
					if err != nil {
						return nil, err
					}
					rv, err := j.rkeys[i](rr)
					if err != nil {
						return nil, err
					}
					if lv.IsNull() || rv.IsNull() || !sqlval.Equal(lv, rv) {
						eq = false
						break
					}
				}
				if !eq {
					continue
				}
				nr := make(sqlval.Row, 0, j.width)
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				joined = append(joined, nr)
			}
		}
	} else {
		joined = make([]sqlval.Row, 0, len(lrows)*len(rrows))
		for _, lr := range lrows {
			for _, rr := range rrows {
				nr := make(sqlval.Row, 0, j.width)
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				joined = append(joined, nr)
			}
		}
	}
	if j.residual != nil {
		filtered := joined[:0]
		for _, row := range joined {
			ok, err := j.residual(row)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, row)
			}
		}
		joined = filtered
	}
	return joined, nil
}

// projPlan is the compiled projection/aggregation tail of a SELECT:
// output expressions, group keys, aggregate arguments, and ORDER BY key
// sources (compiled expression or select-alias index, decided once).
// Per-group HAVING and outputs still evaluate through evalWithAggs —
// that code runs once per group, not once per row, and keeps the
// MySQL-permissive sample-row semantics bit-identical.
type projPlan struct {
	stmt    *SelectStmt
	f       *frame
	cols    []string
	outAST  []Expr // expanded select-list expressions
	grouped bool

	// Non-grouped path.
	exprs []compiledExpr
	order []orderSource

	// Grouped path.
	coll *aggCollector
	keys []compiledExpr
	args []compiledExpr // aggregate argument per collected call; nil = COUNT(*)

	// Batch path (nil bp = row-at-a-time only).
	bp      *batchProj
	bpKinds []sqlval.Kind
	bpPool  sync.Pool
}

// orderSource produces one ORDER BY key for an output row: a compiled
// expression, or (when the expression only resolves as a select alias)
// the index of the output column to reuse.
type orderSource struct {
	eval  compiledExpr
	alias int
}

// newProjPlan compiles the projection tail over the execution frame f;
// starF (the FROM-order frame) expands stars so output column order does
// not depend on the cost-chosen join order. Both frames resolve the same
// names — outAST references are matched by name, not position.
func newProjPlan(f, starF *frame, stmt *SelectStmt) (*projPlan, error) {
	grouped := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, item := range stmt.Items {
		if !item.Star && HasAggregate(item.Expr) {
			grouped = true
		}
	}
	cols, outAST, err := expandItems(starF, stmt.Items)
	if err != nil {
		return nil, err
	}
	pp := &projPlan{stmt: stmt, f: f, cols: cols, outAST: outAST, grouped: grouped}
	if grouped {
		pp.coll = collectAggregates(stmt)
		if pp.keys, err = compileExprs(f, stmt.GroupBy); err != nil {
			return nil, err
		}
		for _, name := range pp.coll.order {
			call := pp.coll.calls[name]
			if call.Star {
				pp.args = append(pp.args, nil)
				continue
			}
			fn, err := compileExpr(f, call.Args[0])
			if err != nil {
				return nil, err
			}
			pp.args = append(pp.args, fn)
		}
		pp.bp = compileBatchProj(f, pp)
		pp.bpKinds = frameKinds(f)
		return pp, nil
	}
	if pp.exprs, err = compileExprs(f, outAST); err != nil {
		return nil, err
	}
	for _, o := range stmt.OrderBy {
		fn, err := compileExpr(f, o.Expr)
		if err != nil {
			// Allow ORDER BY on a select alias, resolved once here
			// instead of per row.
			idx, ok := aliasIndex(o.Expr, cols)
			if !ok {
				return nil, err
			}
			pp.order = append(pp.order, orderSource{alias: idx})
			continue
		}
		pp.order = append(pp.order, orderSource{eval: fn})
	}
	pp.bp = compileBatchProj(f, pp)
	pp.bpKinds = frameKinds(f)
	return pp, nil
}

// aliasIndex finds the select-list column an unqualified ORDER BY ref
// names (orderByAlias, resolved at compile time).
func aliasIndex(e Expr, cols []string) (int, bool) {
	ref, ok := e.(*ColumnRef)
	if !ok || ref.Table != "" {
		return 0, false
	}
	for i, c := range cols {
		if strings.EqualFold(c, ref.Column) {
			return i, true
		}
	}
	return 0, false
}

// projSink accumulates rows for one execution of a projPlan.
type projSink struct {
	pp   *projPlan
	outs []sortRow

	groups  map[uint64][]*group
	ordered []*group

	// Batch-mode scratch, allocated on first addBatch.
	kvecs []*vec
	gbuf  []*group
	ovecs []*vec
	okeys []*vec
}

type sortRow struct {
	out  sqlval.Row
	keys sqlval.Row
}

func (pp *projPlan) newSink(sizeHint int) *projSink {
	s := &projSink{pp: pp}
	if pp.grouped {
		s.groups = make(map[uint64][]*group)
	} else if sizeHint > 0 {
		s.outs = make([]sortRow, 0, sizeHint)
	}
	return s
}

func (pp *projPlan) newGroup(key, sample sqlval.Row) *group {
	g := &group{key: key, sample: sample}
	for _, name := range pp.coll.order {
		g.aggs = append(g.aggs, newAggState(pp.coll.calls[name].Name))
	}
	return g
}

// runRows feeds already-materialized rows through a fresh sink, batching
// when the projection compiled for batch mode.
func (pp *projPlan) runRows(rows []sqlval.Row) (*Result, error) {
	if pp.bp != nil && BatchEnabled() {
		sink := pp.newSink(len(rows))
		ok := true
		ctx := pp.getCtx()
		for start := 0; start < len(rows); start += batchSize {
			end := start + batchSize
			if end > len(rows) {
				end = len(rows)
			}
			ctx.rows = rows[start:end]
			ctx.begin()
			bok, err := sink.addBatch(ctx)
			if err != nil {
				pp.putCtx(ctx)
				return nil, err
			}
			if !bok {
				ok = false
				break
			}
		}
		pp.putCtx(ctx)
		if ok {
			return sink.finish()
		}
		batchFallbacks.Inc() // input layout mismatch: redo row-at-a-time
	}
	sink := pp.newSink(len(rows))
	for _, row := range rows {
		if err := sink.add(row); err != nil {
			return nil, err
		}
	}
	return sink.finish()
}

// add consumes one input row.
func (s *projSink) add(row sqlval.Row) error {
	pp := s.pp
	if pp.grouped {
		key := make(sqlval.Row, len(pp.keys))
		var h uint64 = 14695981039346656037
		for i, fn := range pp.keys {
			v, err := fn(row)
			if err != nil {
				return err
			}
			key[i] = v
			h = h*1099511628211 ^ v.Hash()
		}
		var g *group
		for _, cand := range s.groups[h] {
			same := true
			for i := range key {
				if !sqlval.Equal(cand.key[i], key[i]) {
					same = false
					break
				}
			}
			if same {
				g = cand
				break
			}
		}
		if g == nil {
			g = pp.newGroup(key, row)
			s.groups[h] = append(s.groups[h], g)
			s.ordered = append(s.ordered, g)
		}
		for i, arg := range pp.args {
			if arg == nil {
				g.aggs[i].add(sqlval.Int(1))
				continue
			}
			v, err := arg(row)
			if err != nil {
				return err
			}
			g.aggs[i].add(v)
		}
		return nil
	}

	out := make(sqlval.Row, len(pp.exprs))
	for i, fn := range pp.exprs {
		v, err := fn(row)
		if err != nil {
			return err
		}
		out[i] = v
	}
	var keys sqlval.Row
	if len(pp.order) > 0 {
		keys = make(sqlval.Row, len(pp.order))
		for i, src := range pp.order {
			if src.eval != nil {
				v, err := src.eval(row)
				if err != nil {
					return err
				}
				keys[i] = v
			} else {
				keys[i] = out[src.alias]
			}
		}
	}
	s.outs = append(s.outs, sortRow{out: out, keys: keys})
	return nil
}

// finish sorts, deduplicates, limits, and emits the result.
func (s *projSink) finish() (*Result, error) {
	pp := s.pp
	if !pp.grouped {
		if len(pp.stmt.OrderBy) > 0 {
			sort.SliceStable(s.outs, func(i, j int) bool {
				return lessKeys(s.outs[i].keys, s.outs[j].keys, pp.stmt.OrderBy)
			})
		}
		res := &Result{Columns: pp.cols}
		seen := newDistinctFilter(pp.stmt.Distinct)
		for _, sr := range s.outs {
			if !seen.admit(sr.out) {
				continue
			}
			if pp.stmt.Limit >= 0 && len(res.Rows) >= pp.stmt.Limit {
				break
			}
			res.Rows = append(res.Rows, sr.out)
		}
		return res, nil
	}

	ordered := s.ordered
	// A global aggregate (no GROUP BY) over zero rows still yields one row.
	if len(pp.stmt.GroupBy) == 0 && len(ordered) == 0 {
		ordered = append(ordered, pp.newGroup(nil, nil))
	}
	res := &Result{Columns: pp.cols}
	var outs []sortRow
	for _, g := range ordered {
		if pp.stmt.Having != nil {
			v, err := evalWithAggs(pp.f, pp.stmt.Having, g, pp.coll)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				continue
			}
		}
		out := make(sqlval.Row, len(pp.outAST))
		for i, e := range pp.outAST {
			v, err := evalWithAggs(pp.f, e, g, pp.coll)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		var keys sqlval.Row
		for _, o := range pp.stmt.OrderBy {
			v, err := evalWithAggs(pp.f, o.Expr, g, pp.coll)
			if err != nil {
				v2, err2 := orderByAlias(o.Expr, pp.cols, out)
				if err2 != nil {
					return nil, err
				}
				v = v2
			}
			keys = append(keys, v)
		}
		outs = append(outs, sortRow{out: out, keys: keys})
	}
	if len(pp.stmt.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			return lessKeys(outs[i].keys, outs[j].keys, pp.stmt.OrderBy)
		})
	}
	seen := newDistinctFilter(pp.stmt.Distinct)
	for _, sr := range outs {
		if !seen.admit(sr.out) {
			continue
		}
		if pp.stmt.Limit >= 0 && len(res.Rows) >= pp.stmt.Limit {
			break
		}
		res.Rows = append(res.Rows, sr.out)
	}
	return res, nil
}
