package sqldb

import (
	"math/rand"
	"testing"

	"bestpeer/internal/sqlval"
)

// randomExpr builds a random expression tree over a small column pool.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &ColumnRef{Column: []string{"a", "b", "c"}[rng.Intn(3)]}
		case 1:
			return &ColumnRef{Table: "t", Column: []string{"a", "b"}[rng.Intn(2)]}
		case 2:
			return &Literal{Val: sqlval.Int(int64(rng.Intn(1000)))}
		default:
			return &Literal{Val: sqlval.Str([]string{"x", "it's", "long value"}[rng.Intn(3)])}
		}
	}
	switch rng.Intn(7) {
	case 0:
		return &Binary{Op: []string{"+", "-", "*", "/"}[rng.Intn(4)],
			L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		return &Binary{Op: []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)],
			L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 2:
		return &Binary{Op: []string{"AND", "OR"}[rng.Intn(2)],
			L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 3:
		return &Unary{Op: "NOT", E: randomExpr(rng, depth-1)}
	case 4:
		return &Between{E: randomExpr(rng, depth-1),
			Lo:  &Literal{Val: sqlval.Int(int64(rng.Intn(10)))},
			Hi:  &Literal{Val: sqlval.Int(int64(rng.Intn(100) + 10))},
			Not: rng.Intn(2) == 0}
	case 5:
		in := &InList{E: randomExpr(rng, depth-1), Not: rng.Intn(2) == 0}
		for i := 0; i < rng.Intn(3)+1; i++ {
			in.List = append(in.List, &Literal{Val: sqlval.Int(int64(i))})
		}
		return in
	default:
		return &IsNull{E: randomExpr(rng, depth-1), Not: rng.Intn(2) == 0}
	}
}

// TestExprRenderParseFixpoint: rendering any expression and re-parsing
// it yields an expression with the identical rendering. The engines
// depend on this when they rewrite and re-ship subqueries as SQL text.
func TestExprRenderParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(rng, 4)
		sql := "SELECT x FROM t WHERE " + e.String()
		stmt, err := ParseSelect(sql)
		if err != nil {
			t.Fatalf("trial %d: rendered SQL does not parse: %v\n%s", trial, err, sql)
		}
		if got := stmt.Where.String(); got != e.String() {
			t.Fatalf("trial %d: fixpoint violated\n orig: %s\n reparsed: %s", trial, e.String(), got)
		}
	}
}

// TestDateLiteralRoundTrip covers DATE rendering specifically.
func TestDateLiteralRoundTrip(t *testing.T) {
	e := &Binary{Op: ">", L: &ColumnRef{Column: "d"},
		R: &Literal{Val: sqlval.MustParseDate("1997-03-15")}}
	stmt, err := ParseSelect("SELECT x FROM t WHERE " + e.String())
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Where.String() != e.String() {
		t.Errorf("date round trip: %s vs %s", stmt.Where.String(), e.String())
	}
}

// TestRewriteRefsPreservesStructure: rewriting with the identity
// function returns an equal rendering on random expressions.
func TestRewriteRefsPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, 4)
		id := RewriteRefs(e, func(cr *ColumnRef) Expr { return cr })
		if id.String() != e.String() {
			t.Fatalf("identity rewrite changed expression:\n%s\n%s", e.String(), id.String())
		}
		// Qualify every bare reference; the result must still parse.
		q := RewriteRefs(e, func(cr *ColumnRef) Expr {
			if cr.Table == "" {
				return &ColumnRef{Table: "q", Column: cr.Column}
			}
			return cr
		})
		if _, err := ParseSelect("SELECT x FROM t WHERE " + q.String()); err != nil {
			t.Fatalf("qualified rewrite does not parse: %v", err)
		}
	}
}
