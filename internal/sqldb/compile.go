package sqldb

import (
	"fmt"

	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// This file is the closure compiler for expressions: it walks an
// expression tree once per (statement, frame), resolving every column
// reference to its row offset up front, and returns flat closures that
// evaluate against rows with no per-row name resolution or tree walk.
// Semantics mirror evalExpr/evalPred exactly (SQL unknown-is-false
// predicates, AND/OR short circuit, date-string coercion); the
// interpreter is retained both as the fallback for expressions the
// compiler rejects and as the baseline the differential fuzz test and
// make bench-exec compare against.

// compiledExpr evaluates an expression against a joined row.
type compiledExpr func(row sqlval.Row) (sqlval.Value, error)

// compiledPred evaluates a predicate against a joined row; SQL unknown
// (NULL) is false.
type compiledPred func(row sqlval.Row) (bool, error)

var exprCompiles = telemetry.Default.Counter("sqldb_expr_compiles_total")

// compileExpr compiles a top-level expression over f.
func compileExpr(f *frame, e Expr) (compiledExpr, error) {
	fn, err := compileNode(f, e)
	if err != nil {
		return nil, err
	}
	exprCompiles.Inc()
	return fn, nil
}

// compileExprs compiles a list of expressions over one frame.
func compileExprs(f *frame, exprs []Expr) ([]compiledExpr, error) {
	if len(exprs) == 0 {
		return nil, nil
	}
	out := make([]compiledExpr, len(exprs))
	for i, e := range exprs {
		fn, err := compileExpr(f, e)
		if err != nil {
			return nil, err
		}
		out[i] = fn
	}
	return out, nil
}

// compilePred compiles a top-level predicate over f.
func compilePred(f *frame, e Expr) (compiledPred, error) {
	fn, err := compilePredNode(f, e)
	if err != nil {
		return nil, err
	}
	exprCompiles.Inc()
	return fn, nil
}

// compileFilter fuses conjuncts into a single compiled predicate; a nil
// result means there is nothing to filter.
func compileFilter(f *frame, conjuncts []Expr) (compiledPred, error) {
	if len(conjuncts) == 0 {
		return nil, nil
	}
	if len(conjuncts) == 1 {
		return compilePred(f, conjuncts[0])
	}
	preds := make([]compiledPred, len(conjuncts))
	for i, c := range conjuncts {
		fn, err := compilePred(f, c)
		if err != nil {
			return nil, err
		}
		preds[i] = fn
	}
	return func(row sqlval.Row) (bool, error) {
		for _, p := range preds {
			ok, err := p(row)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}, nil
}

// compileNode mirrors evalExpr case by case.
func compileNode(f *frame, e Expr) (compiledExpr, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(sqlval.Row) (sqlval.Value, error) { return v, nil }, nil
	case *ColumnRef:
		pos, err := f.resolve(x)
		if err != nil {
			return nil, err
		}
		return func(row sqlval.Row) (sqlval.Value, error) { return row[pos], nil }, nil
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			l, err := compilePredNode(f, x.L)
			if err != nil {
				return nil, err
			}
			r, err := compilePredNode(f, x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == "AND" {
				return func(row sqlval.Row) (sqlval.Value, error) {
					lv, err := l(row)
					if err != nil {
						return sqlval.Null(), err
					}
					if !lv {
						return sqlval.Int(0), nil
					}
					rv, err := r(row)
					if err != nil {
						return sqlval.Null(), err
					}
					return boolVal(rv), nil
				}, nil
			}
			return func(row sqlval.Row) (sqlval.Value, error) {
				lv, err := l(row)
				if err != nil {
					return sqlval.Null(), err
				}
				if lv {
					return sqlval.Int(1), nil
				}
				rv, err := r(row)
				if err != nil {
					return sqlval.Null(), err
				}
				return boolVal(rv), nil
			}, nil
		case "+", "-", "*", "/":
			l, err := compileNode(f, x.L)
			if err != nil {
				return nil, err
			}
			r, err := compileNode(f, x.R)
			if err != nil {
				return nil, err
			}
			var arith func(a, b sqlval.Value) sqlval.Value
			switch x.Op {
			case "+":
				arith = sqlval.Add
			case "-":
				arith = sqlval.Sub
			case "*":
				arith = sqlval.Mul
			default:
				arith = sqlval.Div
			}
			return func(row sqlval.Row) (sqlval.Value, error) {
				lv, err := l(row)
				if err != nil {
					return sqlval.Null(), err
				}
				rv, err := r(row)
				if err != nil {
					return sqlval.Null(), err
				}
				return arith(lv, rv), nil
			}, nil
		default: // comparison
			l, err := compileNode(f, x.L)
			if err != nil {
				return nil, err
			}
			r, err := compileNode(f, x.R)
			if err != nil {
				return nil, err
			}
			cmp := comparatorFor(x.Op)
			return func(row sqlval.Row) (sqlval.Value, error) {
				lv, err := l(row)
				if err != nil {
					return sqlval.Null(), err
				}
				rv, err := r(row)
				if err != nil {
					return sqlval.Null(), err
				}
				if lv.IsNull() || rv.IsNull() {
					return sqlval.Null(), nil // SQL unknown
				}
				return boolVal(cmp(lv, rv)), nil
			}, nil
		}
	case *Unary:
		inner, err := compileNode(f, x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return func(row sqlval.Row) (sqlval.Value, error) {
				v, err := inner(row)
				if err != nil {
					return sqlval.Null(), err
				}
				if v.IsNull() {
					return sqlval.Null(), nil
				}
				return boolVal(!truthy(v)), nil
			}, nil
		}
		return func(row sqlval.Row) (sqlval.Value, error) {
			v, err := inner(row)
			if err != nil {
				return sqlval.Null(), err
			}
			return sqlval.Sub(sqlval.Int(0), v), nil
		}, nil
	case *Between:
		ev, err := compileNode(f, x.E)
		if err != nil {
			return nil, err
		}
		lo, err := compileNode(f, x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := compileNode(f, x.Hi)
		if err != nil {
			return nil, err
		}
		ge := comparatorFor(">=")
		le := comparatorFor("<=")
		not := x.Not
		return func(row sqlval.Row) (sqlval.Value, error) {
			v, err := ev(row)
			if err != nil {
				return sqlval.Null(), err
			}
			lov, err := lo(row)
			if err != nil {
				return sqlval.Null(), err
			}
			hiv, err := hi(row)
			if err != nil {
				return sqlval.Null(), err
			}
			if v.IsNull() || lov.IsNull() || hiv.IsNull() {
				return sqlval.Null(), nil
			}
			in := ge(v, lov) && le(v, hiv)
			return boolVal(in != not), nil
		}, nil
	case *InList:
		ev, err := compileNode(f, x.E)
		if err != nil {
			return nil, err
		}
		items, err := compileNodeList(f, x.List)
		if err != nil {
			return nil, err
		}
		eq := comparatorFor("=")
		not := x.Not
		return func(row sqlval.Row) (sqlval.Value, error) {
			v, err := ev(row)
			if err != nil {
				return sqlval.Null(), err
			}
			if v.IsNull() {
				return sqlval.Null(), nil
			}
			for _, item := range items {
				iv, err := item(row)
				if err != nil {
					return sqlval.Null(), err
				}
				if !iv.IsNull() && eq(v, iv) {
					return boolVal(!not), nil
				}
			}
			return boolVal(not), nil
		}, nil
	case *IsNull:
		ev, err := compileNode(f, x.E)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(row sqlval.Row) (sqlval.Value, error) {
			v, err := ev(row)
			if err != nil {
				return sqlval.Null(), err
			}
			return boolVal(v.IsNull() != not), nil
		}, nil
	case *FuncCall:
		if isAggregateName(x.Name) {
			return nil, fmt.Errorf("sqldb: aggregate %s outside aggregation context", x.Name)
		}
		return nil, fmt.Errorf("sqldb: unknown function %s", x.Name)
	default:
		return nil, fmt.Errorf("sqldb: cannot evaluate %T", e)
	}
}

func compileNodeList(f *frame, exprs []Expr) ([]compiledExpr, error) {
	out := make([]compiledExpr, len(exprs))
	for i, e := range exprs {
		fn, err := compileNode(f, e)
		if err != nil {
			return nil, err
		}
		out[i] = fn
	}
	return out, nil
}

// compilePredNode compiles e for use in predicate position, shortcutting
// the Value boxing for the comparison and logical forms that dominate
// WHERE clauses. Any error or NULL from a subexpression yields exactly
// what evalPred over evalExpr would.
func compilePredNode(f *frame, e Expr) (compiledPred, error) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			l, err := compilePredNode(f, x.L)
			if err != nil {
				return nil, err
			}
			r, err := compilePredNode(f, x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == "AND" {
				return func(row sqlval.Row) (bool, error) {
					lv, err := l(row)
					if err != nil || !lv {
						return false, err
					}
					return r(row)
				}, nil
			}
			return func(row sqlval.Row) (bool, error) {
				lv, err := l(row)
				if err != nil || lv {
					return lv, err
				}
				return r(row)
			}, nil
		case "+", "-", "*", "/":
			// Arithmetic in predicate position: truthiness of the value.
		default:
			l, err := compileNode(f, x.L)
			if err != nil {
				return nil, err
			}
			r, err := compileNode(f, x.R)
			if err != nil {
				return nil, err
			}
			cmp := comparatorFor(x.Op)
			return func(row sqlval.Row) (bool, error) {
				lv, err := l(row)
				if err != nil {
					return false, err
				}
				rv, err := r(row)
				if err != nil {
					return false, err
				}
				if lv.IsNull() || rv.IsNull() {
					return false, nil // SQL unknown
				}
				return cmp(lv, rv), nil
			}, nil
		}
	case *IsNull:
		ev, err := compileNode(f, x.E)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(row sqlval.Row) (bool, error) {
			v, err := ev(row)
			if err != nil {
				return false, err
			}
			return v.IsNull() != not, nil
		}, nil
	}
	fn, err := compileNode(f, e)
	if err != nil {
		return nil, err
	}
	return func(row sqlval.Row) (bool, error) {
		v, err := fn(row)
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			return false, nil
		}
		return truthy(v), nil
	}, nil
}

// comparatorFor returns a closure with compareCoerced's semantics for
// one fixed operator: the op dispatch happens once at compile time.
func comparatorFor(op string) func(a, b sqlval.Value) bool {
	var test func(c int) bool
	switch op {
	case "=":
		test = func(c int) bool { return c == 0 }
	case "<>":
		test = func(c int) bool { return c != 0 }
	case "<":
		test = func(c int) bool { return c < 0 }
	case "<=":
		test = func(c int) bool { return c <= 0 }
	case ">":
		test = func(c int) bool { return c > 0 }
	case ">=":
		test = func(c int) bool { return c >= 0 }
	default:
		return func(a, b sqlval.Value) bool { return false }
	}
	return func(a, b sqlval.Value) bool {
		if a.Kind() == sqlval.KindDate && b.Kind() == sqlval.KindString {
			if d, err := sqlval.ParseDate(b.AsString()); err == nil {
				b = d
			}
		}
		if b.Kind() == sqlval.KindDate && a.Kind() == sqlval.KindString {
			if d, err := sqlval.ParseDate(a.AsString()); err == nil {
				a = d
			}
		}
		return test(sqlval.Compare(a, b))
	}
}

// compileHash builds an FNV join-key hasher over compiled key
// evaluators; rows with equal keys hash equally (same scheme as
// hashKey).
func compileHash(keys []compiledExpr) func(row sqlval.Row) (uint64, error) {
	return func(row sqlval.Row) (uint64, error) {
		var h uint64 = 1469598103934665603
		for _, k := range keys {
			v, err := k(row)
			if err != nil {
				return 0, err
			}
			h = h*1099511628211 ^ v.Hash()
		}
		return h, nil
	}
}
