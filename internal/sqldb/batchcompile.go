package sqldb

import (
	"errors"
	"sort"

	"bestpeer/internal/sqlval"
)

// This file is the batch compiler: it walks the same expression trees as
// compileNode/compilePredNode but, instead of per-row closures, emits
// per-BATCH programs whose inner loops are the typed primitives in
// vector.go, specialized at compile time by the operand kinds the schema
// declares (sound because Table.Insert coerces every stored value to its
// column's kind or NULL).
//
// Semantics must be bit-identical to the row paths: every case below
// cites the row behavior it mirrors. Expressions the batch compiler
// cannot handle (per-row date-string parsing, unknown functions) make
// the whole statement fall back to row-compiled closures — never a
// silently different answer.

// errBatchUnsupported marks an expression the batch compiler rejects;
// the statement falls back to the row-compiled path.
var errBatchUnsupported = errors.New("sqldb: not batch-compilable")

// bexpr evaluates one expression over the current batch, returning the
// result vector (a scratch slot, a loaded column, or a shared constant).
type bexpr func(ctx *bctx) *vec

// bpred evaluates one predicate over the current batch. The result is
// three-valued; consumers collapse NULL to false exactly where the row
// engine's predicate boundary does.
type bpred func(ctx *bctx) *pvec

// bctx is the per-run execution state of a batch program: the input
// rows, the selection vector, loaded column vectors, and the scratch
// slots compiled nodes write into. One bctx serves one row layout; it is
// pooled per plan so vectors are allocated once and reused every batch.
type bctx struct {
	kinds    []sqlval.Kind
	n        int
	sel      []int32
	rows     []sqlval.Row // staged input: own[:k] (scans) or a window (joins/projection)
	own      []sqlval.Row // the context's own accumulation buffer
	cols     []*vec
	loaded   []bool
	slots    []*vec
	pslots   []*pvec
	selBuf   []int32
	mismatch bool
}

func newBctx(kinds []sqlval.Kind) *bctx {
	own := make([]sqlval.Row, 0, batchSize)
	return &bctx{
		kinds:  kinds,
		cols:   make([]*vec, len(kinds)),
		loaded: make([]bool, len(kinds)),
		rows:   own,
		own:    own,
		selBuf: make([]int32, 0, batchSize),
	}
}

// begin starts a batch over the currently staged rows: full selection,
// no columns loaded yet.
func (ctx *bctx) begin() {
	ctx.n = len(ctx.rows)
	ctx.sel = identSel[:ctx.n]
	for i := range ctx.loaded {
		ctx.loaded[i] = false
	}
	batchesTotal.Inc()
	batchRows.Add(int64(ctx.n))
}

// reset discards the staged rows after a batch is processed.
func (ctx *bctx) reset() {
	ctx.rows = ctx.rows[:0]
	ctx.n = 0
}

// vslot returns the scratch vector for a compiled node, growing the
// arena and (re)typing the lane as needed.
func (ctx *bctx) vslot(id int, kind sqlval.Kind) *vec {
	for len(ctx.slots) <= id {
		ctx.slots = append(ctx.slots, nil)
	}
	v := ctx.slots[id]
	if v == nil {
		v = &vec{}
		ctx.slots[id] = v
	}
	v.ensure(kind)
	return v
}

// pslot returns the scratch predicate vector for a compiled node.
func (ctx *bctx) pslot(id int) *pvec {
	for len(ctx.pslots) <= id {
		ctx.pslots = append(ctx.pslots, nil)
	}
	p := ctx.pslots[id]
	if p == nil {
		p = &pvec{}
		ctx.pslots[id] = p
	}
	p.ensure()
	return p
}

// loadCols unpacks the listed columns from the staged rows into typed
// vectors at the current selection. Returns false when a stored value's
// kind disagrees with the layout's declared kind — impossible for base
// tables (Insert coerces) but conceivable for engine-synthesized row
// sets, in which case the caller abandons the batch path for this run.
func (ctx *bctx) loadCols(offs []int) bool {
	for _, off := range offs {
		if ctx.loaded[off] {
			continue
		}
		ctx.loaded[off] = true
		kind := ctx.kinds[off]
		v := ctx.cols[off]
		if v == nil {
			v = &vec{}
			ctx.cols[off] = v
		}
		v.ensure(kind)
		switch kind {
		case sqlval.KindInt, sqlval.KindDate:
			for _, i := range ctx.sel {
				val := ctx.rows[i][off]
				if val.IsNull() {
					v.null[i] = true
					continue
				}
				if val.Kind() != kind {
					ctx.mismatch = true
					return false
				}
				v.null[i] = false
				v.i[i] = val.AsInt()
			}
		case sqlval.KindFloat:
			for _, i := range ctx.sel {
				val := ctx.rows[i][off]
				if val.IsNull() {
					v.null[i] = true
					continue
				}
				if val.Kind() != kind {
					ctx.mismatch = true
					return false
				}
				v.null[i] = false
				v.f[i] = val.AsFloat()
			}
		case sqlval.KindString:
			for _, i := range ctx.sel {
				val := ctx.rows[i][off]
				if val.IsNull() {
					v.null[i] = true
					continue
				}
				if val.Kind() != kind {
					ctx.mismatch = true
					return false
				}
				v.null[i] = false
				v.s[i] = val.AsString()
			}
		default:
			ctx.mismatch = true
			return false
		}
	}
	return true
}

// bval is a compiled value-position expression: either a program or a
// compile-time constant broadcast into a shared read-only vector. kind
// is the static result kind (KindNull = statically NULL).
type bval struct {
	kind sqlval.Kind
	fn   bexpr
	cv   *vec         // constant vector when fn == nil
	cval sqlval.Value // the constant when fn == nil
}

func (b *bval) isConst() bool { return b.fn == nil }

func (b *bval) eval(ctx *bctx) *vec {
	if b.fn == nil {
		return b.cv
	}
	return b.fn(ctx)
}

func bconst(v sqlval.Value) bval {
	return bval{kind: v.Kind(), cv: constVec(v), cval: v}
}

// constPvec builds a read-only full-length predicate vector.
func constPvec(val, null bool) *pvec {
	p := &pvec{}
	p.ensure()
	for i := 0; i < batchSize; i++ {
		p.val[i], p.null[i] = val, null
	}
	return p
}

// bcomp is the compile-time context for one program family (a scan
// filter, a join key set, a projection): the frame it resolves against,
// the column offsets it needs loaded, and the scratch-slot arenas.
// Programs from different families may share slot IDs only because they
// never have live results at the same time on one bctx.
type bcomp struct {
	f       *frame
	kinds   []sqlval.Kind
	need    map[int]bool
	nslots  *int
	npslots *int
}

func newBcomp(f *frame, nslots, npslots *int) *bcomp {
	return &bcomp{f: f, kinds: frameKinds(f), need: make(map[int]bool), nslots: nslots, npslots: npslots}
}

// frameKinds flattens the frame's schemas into per-offset value kinds.
func frameKinds(f *frame) []sqlval.Kind {
	out := make([]sqlval.Kind, 0, f.width)
	for _, b := range f.bindings {
		for _, c := range b.schema.Columns {
			out = append(out, c.Kind)
		}
	}
	return out
}

func (c *bcomp) vslot() int   { id := *c.nslots; *c.nslots++; return id }
func (c *bcomp) pslotID() int { id := *c.npslots; *c.npslots++; return id }

// offsets returns the needed column offsets in deterministic order.
func (c *bcomp) offsets() []int {
	out := make([]int, 0, len(c.need))
	for off := range c.need {
		out = append(out, off)
	}
	sort.Ints(out)
	return out
}

// compileValue mirrors compileNode: one case per expression form, each
// annotated with the row semantics it reproduces.
func (c *bcomp) compileValue(e Expr) (bval, error) {
	switch x := e.(type) {
	case *Literal:
		return bconst(x.Val), nil

	case *ColumnRef:
		off, err := c.f.resolve(x)
		if err != nil {
			return bval{}, err
		}
		c.need[off] = true
		kind := c.kinds[off]
		return bval{kind: kind, fn: func(ctx *bctx) *vec { return ctx.cols[off] }}, nil

	case *Binary:
		switch x.Op {
		case "AND", "OR":
			// Row: both children collapse NULL to bool, result is a
			// never-NULL 0/1 (evalExpr AND/OR via evalPred).
			l, err := c.compilePred(x.L)
			if err != nil {
				return bval{}, err
			}
			r, err := c.compilePred(x.R)
			if err != nil {
				return bval{}, err
			}
			ps, vs := c.pslotID(), c.vslot()
			and := x.Op == "AND"
			return bval{kind: sqlval.KindInt, fn: func(ctx *bctx) *vec {
				lp, rp := l(ctx), r(ctx)
				out := ctx.pslot(ps)
				if and {
					andPred(lp, rp, out, ctx.sel)
				} else {
					orPred(lp, rp, out, ctx.sel)
				}
				v := ctx.vslot(vs, sqlval.KindInt)
				predToVec(out, v, ctx.sel)
				return v
			}}, nil
		case "+", "-", "*", "/":
			l, err := c.compileValue(x.L)
			if err != nil {
				return bval{}, err
			}
			r, err := c.compileValue(x.R)
			if err != nil {
				return bval{}, err
			}
			return c.arith(l, r, x.Op)
		default: // comparison: NULL operands yield NULL (kept in the pvec)
			l, err := c.compileValue(x.L)
			if err != nil {
				return bval{}, err
			}
			r, err := c.compileValue(x.R)
			if err != nil {
				return bval{}, err
			}
			p, err := c.compileCmp(l, r, x.Op)
			if err != nil {
				return bval{}, err
			}
			return c.predValue(p), nil
		}

	case *Unary:
		inner, err := c.compileValue(x.E)
		if err != nil {
			return bval{}, err
		}
		if x.Op == "NOT" {
			// Row: NULL stays NULL, else !truthy.
			if inner.isConst() {
				if inner.cval.IsNull() {
					return bconst(sqlval.Null()), nil
				}
				return bconst(boolVal(!truthy(inner.cval))), nil
			}
			tp, np := c.pslotID(), c.pslotID()
			vs := c.vslot()
			return bval{kind: sqlval.KindInt, fn: func(ctx *bctx) *vec {
				t := ctx.pslot(tp)
				truthyPred(inner.eval(ctx), t, ctx.sel)
				n := ctx.pslot(np)
				notPred(t, n, ctx.sel)
				out := ctx.vslot(vs, sqlval.KindInt)
				predToVec(n, out, ctx.sel)
				return out
			}}, nil
		}
		// Unary minus: row computes Sub(Int(0), v).
		zero := bconst(sqlval.Int(0))
		return c.arith(zero, inner, "-")

	case *Between:
		// Row: NULL in subject or either bound yields NULL; otherwise
		// ge(v,lo) && le(v,hi), flipped by NOT. The raw AND keeps the
		// union of the operand NULL flags, matching the row check.
		ev, err := c.compileValue(x.E)
		if err != nil {
			return bval{}, err
		}
		lo, err := c.compileValue(x.Lo)
		if err != nil {
			return bval{}, err
		}
		hi, err := c.compileValue(x.Hi)
		if err != nil {
			return bval{}, err
		}
		ge, err := c.compileCmp(ev, lo, ">=")
		if err != nil {
			return bval{}, err
		}
		le, err := c.compileCmp(ev, hi, "<=")
		if err != nil {
			return bval{}, err
		}
		ps := c.pslotID()
		var p bpred = func(ctx *bctx) *pvec {
			g, l := ge(ctx), le(ctx)
			out := ctx.pslot(ps)
			rawAndPred(g, l, out, ctx.sel)
			return out
		}
		if x.Not {
			np := c.pslotID()
			in := p
			p = func(ctx *bctx) *pvec {
				out := ctx.pslot(np)
				notPred(in(ctx), out, ctx.sel)
				return out
			}
		}
		return c.predValue(p), nil

	case *InList:
		// Row: NULL subject yields NULL; NULL list items are skipped; a
		// match yields !not, exhaustion yields not.
		ev, err := c.compileValue(x.E)
		if err != nil {
			return bval{}, err
		}
		eqs := make([]bpred, len(x.List))
		for i, item := range x.List {
			iv, err := c.compileValue(item)
			if err != nil {
				return bval{}, err
			}
			if eqs[i], err = c.compileCmp(ev, iv, "="); err != nil {
				return bval{}, err
			}
		}
		acc, outp := c.pslotID(), c.pslotID()
		not := x.Not
		return c.predValue(func(ctx *bctx) *pvec {
			a := ctx.pslot(acc)
			for _, i := range ctx.sel {
				a.val[i], a.null[i] = false, false
			}
			for _, eq := range eqs {
				orMatched(a, eq(ctx), ctx.sel)
			}
			out := ctx.pslot(outp)
			inListFinish(ev.eval(ctx), a, out, ctx.sel, not)
			return out
		}), nil

	case *IsNull:
		ev, err := c.compileValue(x.E)
		if err != nil {
			return bval{}, err
		}
		ps := c.pslotID()
		not := x.Not
		return c.predValue(func(ctx *bctx) *pvec {
			out := ctx.pslot(ps)
			isNullPred(ev.eval(ctx), out, ctx.sel, not)
			return out
		}), nil

	default:
		// FuncCall and anything new: the row compiler rejects these too,
		// so interpreter fallback already owns the semantics.
		return bval{}, errBatchUnsupported
	}
}

// predValue boxes a predicate program into a 0/1 INT value, NULLs kept.
func (c *bcomp) predValue(p bpred) bval {
	vs := c.vslot()
	return bval{kind: sqlval.KindInt, fn: func(ctx *bctx) *vec {
		out := ctx.vslot(vs, sqlval.KindInt)
		predToVec(p(ctx), out, ctx.sel)
		return out
	}}
}

// arith compiles +,-,*,/ with the exact widening ladder of sqlval.arith:
// INT∘INT stays INT; any FLOAT widens both sides; a non-numeric operand
// (string, date, NULL) makes the result statically NULL; division is
// always FLOAT with NULL on zero divisors.
func (c *bcomp) arith(l, r bval, op string) (bval, error) {
	if l.isConst() && r.isConst() {
		var v sqlval.Value
		switch op {
		case "+":
			v = sqlval.Add(l.cval, r.cval)
		case "-":
			v = sqlval.Sub(l.cval, r.cval)
		case "*":
			v = sqlval.Mul(l.cval, r.cval)
		default:
			v = sqlval.Div(l.cval, r.cval)
		}
		return bconst(v), nil
	}
	numeric := func(k sqlval.Kind) bool { return k == sqlval.KindInt || k == sqlval.KindFloat }
	if !numeric(l.kind) || !numeric(r.kind) {
		return bconst(sqlval.Null()), nil
	}
	if op == "/" {
		lf, rf := c.asFloat(l), c.asFloat(r)
		vs := c.vslot()
		return bval{kind: sqlval.KindFloat, fn: func(ctx *bctx) *vec {
			out := ctx.vslot(vs, sqlval.KindFloat)
			divFloatVV(lf(ctx), rf(ctx), out, ctx.sel)
			return out
		}}, nil
	}
	if l.kind == sqlval.KindInt && r.kind == sqlval.KindInt {
		var prim func(l, r, out *vec, sel []int32)
		switch op {
		case "+":
			prim = addIntVV
		case "-":
			prim = subIntVV
		default:
			prim = mulIntVV
		}
		vs := c.vslot()
		return bval{kind: sqlval.KindInt, fn: func(ctx *bctx) *vec {
			out := ctx.vslot(vs, sqlval.KindInt)
			prim(l.eval(ctx), r.eval(ctx), out, ctx.sel)
			return out
		}}, nil
	}
	var prim func(l, r, out *vec, sel []int32)
	switch op {
	case "+":
		prim = addFloatVV
	case "-":
		prim = subFloatVV
	default:
		prim = mulFloatVV
	}
	lf, rf := c.asFloat(l), c.asFloat(r)
	vs := c.vslot()
	return bval{kind: sqlval.KindFloat, fn: func(ctx *bctx) *vec {
		out := ctx.vslot(vs, sqlval.KindFloat)
		prim(lf(ctx), rf(ctx), out, ctx.sel)
		return out
	}}, nil
}

// asFloat widens an INT/DATE-lane operand into a float vector (the
// batch twin of AsFloat); FLOAT operands pass through untouched.
func (c *bcomp) asFloat(b bval) bexpr {
	if b.kind == sqlval.KindFloat {
		eb := b
		return func(ctx *bctx) *vec { return eb.eval(ctx) }
	}
	if b.isConst() {
		cv := constVec(sqlval.Float(b.cval.AsFloat()))
		return func(*bctx) *vec { return cv }
	}
	vs := c.vslot()
	inner := b.fn
	return func(ctx *bctx) *vec {
		dst := ctx.vslot(vs, sqlval.KindFloat)
		toFloat(inner(ctx), dst, ctx.sel)
		return dst
	}
}

// compileCmp compiles one comparison, dispatching on the static operand
// kinds the way comparatorFor dispatches on runtime kinds:
//   - equal kinds use the typed lane loop;
//   - mixed number-line kinds (INT, FLOAT, DATE) widen to float;
//   - a DATE vs constant-string pair parses the string once here (the
//     row path parses per row); unparseable strings and any pairing that
//     sqlval.Compare orders by kind tag become constant-outcome loops;
//   - a DATE vs non-constant string would need a per-row parse, so the
//     statement falls back to row mode.
func (c *bcomp) compileCmp(l, r bval, op string) (bpred, error) {
	lt, eq, gt, ok := opMasks(op)
	if !ok {
		return nil, errBatchUnsupported
	}
	if l.isConst() && r.isConst() {
		if l.cval.IsNull() || r.cval.IsNull() {
			p := constPvec(false, true)
			return func(*bctx) *pvec { return p }, nil
		}
		cmp := comparatorFor(op)
		p := constPvec(cmp(l.cval, r.cval), false)
		return func(*bctx) *pvec { return p }, nil
	}
	if l.kind == sqlval.KindNull || r.kind == sqlval.KindNull {
		p := constPvec(false, true)
		return func(*bctx) *pvec { return p }, nil
	}
	if l.kind == sqlval.KindDate && r.kind == sqlval.KindString {
		if !r.isConst() {
			return nil, errBatchUnsupported // would need a per-row parse
		}
		if d, err := sqlval.ParseDate(r.cval.AsString()); err == nil {
			r = bconst(d)
		}
	}
	if r.kind == sqlval.KindDate && l.kind == sqlval.KindString {
		if !l.isConst() {
			return nil, errBatchUnsupported
		}
		if d, err := sqlval.ParseDate(l.cval.AsString()); err == nil {
			l = bconst(d)
		}
	}
	numLike := func(k sqlval.Kind) bool {
		return k == sqlval.KindInt || k == sqlval.KindFloat || k == sqlval.KindDate
	}
	ps := c.pslotID()
	switch {
	case l.kind == r.kind && (l.kind == sqlval.KindInt || l.kind == sqlval.KindDate):
		return func(ctx *bctx) *pvec {
			out := ctx.pslot(ps)
			cmpIntVV(l.eval(ctx), r.eval(ctx), out, ctx.sel, lt, eq, gt)
			return out
		}, nil
	case l.kind == r.kind && l.kind == sqlval.KindFloat:
		return func(ctx *bctx) *pvec {
			out := ctx.pslot(ps)
			cmpFloatVV(l.eval(ctx), r.eval(ctx), out, ctx.sel, lt, eq, gt)
			return out
		}, nil
	case l.kind == r.kind && l.kind == sqlval.KindString:
		return func(ctx *bctx) *pvec {
			out := ctx.pslot(ps)
			cmpStrVV(l.eval(ctx), r.eval(ctx), out, ctx.sel, lt, eq, gt)
			return out
		}, nil
	case numLike(l.kind) && numLike(r.kind):
		lf, rf := c.asFloat(l), c.asFloat(r)
		return func(ctx *bctx) *pvec {
			out := ctx.pslot(ps)
			cmpFloatVV(lf(ctx), rf(ctx), out, ctx.sel, lt, eq, gt)
			return out
		}, nil
	default:
		// Different kinds, not both number-line: sqlval.Compare orders by
		// kind tag, so the non-NULL outcome is a compile-time constant.
		ctag := 1
		if l.kind < r.kind {
			ctag = -1
		}
		res := (ctag < 0 && lt) || (ctag > 0 && gt)
		return func(ctx *bctx) *pvec {
			out := ctx.pslot(ps)
			cmpConstResult(l.eval(ctx), r.eval(ctx), out, ctx.sel, res)
			return out
		}, nil
	}
}

// compilePred mirrors compilePredNode: AND/OR collapse each child's NULL
// to false; comparisons and IS NULL compile directly; everything else
// goes through value truthiness with NULLs kept for the consumer.
func (c *bcomp) compilePred(e Expr) (bpred, error) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			l, err := c.compilePred(x.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compilePred(x.R)
			if err != nil {
				return nil, err
			}
			ps := c.pslotID()
			and := x.Op == "AND"
			return func(ctx *bctx) *pvec {
				lp, rp := l(ctx), r(ctx)
				out := ctx.pslot(ps)
				if and {
					andPred(lp, rp, out, ctx.sel)
				} else {
					orPred(lp, rp, out, ctx.sel)
				}
				return out
			}, nil
		case "+", "-", "*", "/":
			// Arithmetic in predicate position: truthiness of the value.
		default:
			l, err := c.compileValue(x.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileValue(x.R)
			if err != nil {
				return nil, err
			}
			return c.compileCmp(l, r, x.Op)
		}
	case *IsNull:
		ev, err := c.compileValue(x.E)
		if err != nil {
			return nil, err
		}
		ps := c.pslotID()
		not := x.Not
		return func(ctx *bctx) *pvec {
			out := ctx.pslot(ps)
			isNullPred(ev.eval(ctx), out, ctx.sel, not)
			return out
		}, nil
	}
	v, err := c.compileValue(e)
	if err != nil {
		return nil, err
	}
	if v.isConst() {
		p := constPvec(!v.cval.IsNull() && truthy(v.cval), v.cval.IsNull())
		return func(*bctx) *pvec { return p }, nil
	}
	ps := c.pslotID()
	return func(ctx *bctx) *pvec {
		out := ctx.pslot(ps)
		truthyPred(v.eval(ctx), out, ctx.sel)
		return out
	}, nil
}

// compileFilter fuses per-table conjuncts into one batch predicate; each
// conjunct's NULL collapses to false at the fold, exactly like the row
// filter's per-conjunct boundary. nil means nothing to filter.
func (c *bcomp) compileFilter(conjuncts []Expr) (bpred, error) {
	if len(conjuncts) == 0 {
		return nil, nil
	}
	preds := make([]bpred, len(conjuncts))
	for i, e := range conjuncts {
		fn, err := c.compilePred(e)
		if err != nil {
			return nil, err
		}
		preds[i] = fn
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	acc := c.pslotID()
	return func(ctx *bctx) *pvec {
		out := ctx.pslot(acc)
		andPred(preds[0](ctx), preds[1](ctx), out, ctx.sel)
		for _, p := range preds[2:] {
			andPred(out, p(ctx), out, ctx.sel)
		}
		return out
	}, nil
}
