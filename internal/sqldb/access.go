package sqldb

import (
	"sort"
	"sync"
	"sync/atomic"

	"bestpeer/internal/telemetry"
)

// Bounded per-table access accounting — the storage tier's contribution
// to the heat plane. Every index probe and full scan increments its
// table's pair of atomic counters; the table set is capped so a
// workload touching unbounded table names (temp tables, fuzzers) folds
// into one overflow slot instead of growing label cardinality. The peer
// reporter turns these counts into peer_table_access_total deltas, so
// the collector can say not just which key range is hot but which table
// the traffic hits.

// maxAccessTables caps the distinct tables tracked per database;
// accesses to tables beyond the cap land in the shared overflow slot.
const maxAccessTables = 32

// AccessOverflowTable names the overflow slot in AccessCounts output.
const AccessOverflowTable = "~other"

// TableAccess is one table's live access counters. Handles are resolved
// once at plan-compile time and incremented from scan entry points.
type TableAccess struct {
	scans      atomic.Int64
	indexReads atomic.Int64
}

// record counts one access through the chosen path.
func (t *TableAccess) record(index bool) {
	if t == nil || !telemetry.IsEnabled() {
		return
	}
	if index {
		t.indexReads.Add(1)
	} else {
		t.scans.Add(1)
	}
}

// AccessCounts is one table's frozen access totals.
type AccessCounts struct {
	Table      string
	Scans      int64
	IndexReads int64
}

// accessStats is the per-DB bounded table registry.
type accessStats struct {
	mu       sync.Mutex
	tables   map[string]*TableAccess
	overflow TableAccess
}

// handle resolves (or creates) a table's counter pair; tables past the
// cap share the overflow slot.
func (a *accessStats) handle(table string) *TableAccess {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tables == nil {
		a.tables = make(map[string]*TableAccess)
	}
	if t := a.tables[table]; t != nil {
		return t
	}
	if len(a.tables) >= maxAccessTables {
		return &a.overflow
	}
	t := &TableAccess{}
	a.tables[table] = t
	return t
}

// counts freezes every tracked table's totals, sorted by table name,
// with the overflow slot (when touched) reported last under
// AccessOverflowTable.
func (a *accessStats) counts() []AccessCounts {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AccessCounts, 0, len(a.tables)+1)
	for name, t := range a.tables {
		c := AccessCounts{Table: name, Scans: t.scans.Load(), IndexReads: t.indexReads.Load()}
		if c.Scans == 0 && c.IndexReads == 0 {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	if s, ix := a.overflow.scans.Load(), a.overflow.indexReads.Load(); s > 0 || ix > 0 {
		out = append(out, AccessCounts{Table: AccessOverflowTable, Scans: s, IndexReads: ix})
	}
	return out
}

// AccessCounts returns the database's per-table access totals (index
// probes vs full scans), sorted by table, bounded to maxAccessTables
// distinct tables plus one overflow slot.
func (db *DB) AccessCounts() []AccessCounts {
	return db.access.counts()
}
