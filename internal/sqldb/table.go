package sqldb

import (
	"fmt"
	"strings"

	"bestpeer/internal/btree"
	"bestpeer/internal/sqlval"
)

// Table is the physical storage for one relation: a row store plus any
// number of B+-tree indexes. Deleted rows leave tombstones (nil rows);
// the workload is load-mostly, matching the MyISAM read-optimized
// configuration the paper uses.
type Table struct {
	schema  *Schema
	rows    []sqlval.Row // index = rowID; nil = tombstone
	sizes   []int32      // index = rowID; cached EncodedSize of the row
	live    int
	bytes   int64 // encoded size of live rows
	indexes map[string]*Index
	muts    uint64 // insert/delete/update count, drives statistics refresh

	// db points back to the owning database when the table was created
	// through one (DB.CreateTable); mutations are then offered to the
	// database's write-ahead log and atomic-batch machinery. A bare
	// NewTable has no owner and logs nothing.
	db  *DB
	key string // lowercased table name, the WAL record key
}

// Index is a secondary (or primary) index over a single column. Because
// secondary keys may repeat, each B+-tree entry holds the slice of row
// IDs carrying that key.
type Index struct {
	Name   string
	Column string
	col    int
	unique bool
	tree   *btree.Tree
}

// NewTable creates an empty table for the schema. A primary index is
// built automatically when the schema declares a primary key.
func NewTable(schema *Schema) (*Table, error) {
	if err := schema.validate(); err != nil {
		return nil, err
	}
	t := &Table{schema: schema.Clone(), indexes: make(map[string]*Index)}
	if schema.PrimaryKey != "" {
		// The primary index is implied by the schema, so it is not
		// logged: replaying a create_table record rebuilds it.
		if err := t.createIndexRaw("primary", schema.PrimaryKey, true); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the number of live rows.
func (t *Table) NumRows() int { return t.live }

// DataBytes returns the total encoded size of live rows; the cost model
// charges full-table scans by this figure.
func (t *Table) DataBytes() int64 { return t.bytes }

// Mutations returns the number of Insert/Delete/Update calls since the
// table was created. The statistics layer compares it against the count
// captured at histogram-build time to decide when stats are stale.
func (t *Table) Mutations() uint64 { return t.muts }

// RowSize returns the cached encoded size of the row with the given ID.
// Scans charge BytesScanned per visited row; caching the size at write
// time keeps that charge O(1) instead of O(columns) per row.
func (t *Table) RowSize(rowID int) int {
	if rowID < 0 || rowID >= len(t.sizes) {
		return 0
	}
	return int(t.sizes[rowID])
}

// CreateIndex builds an index named name over column col. Unique indexes
// reject duplicate keys at insert time. The DDL is logged to the owning
// database's WAL (without a schema-version bump — the SQL CREATE INDEX
// path bumps and logs through the database instead).
func (t *Table) CreateIndex(name, col string, unique bool) error {
	if err := t.createIndexRaw(name, col, unique); err != nil {
		return err
	}
	if t.db != nil {
		t.db.logRecord(WALRecord{Kind: RecCreateIndex, Table: t.key, IxName: name, IxColumn: col, IxUnique: unique})
	}
	return nil
}

// createIndexRaw builds the index without touching the WAL: the shared
// body of CreateIndex, the SQL DDL path, and replay.
func (t *Table) createIndexRaw(name, col string, unique bool) error {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("sqldb: table %s: no column %s to index", t.schema.Table, col)
	}
	lname := strings.ToLower(name)
	if _, ok := t.indexes[lname]; ok {
		return fmt.Errorf("sqldb: table %s: index %s already exists", t.schema.Table, name)
	}
	idx := &Index{Name: name, Column: col, col: ci, unique: unique, tree: btree.New()}
	for rowID, row := range t.rows {
		if row == nil {
			continue
		}
		if err := idx.add(row[ci], rowID); err != nil {
			return err
		}
	}
	t.indexes[lname] = idx
	return nil
}

// IndexOn returns an index whose key column is col, preferring unique
// indexes, or nil when the column is unindexed.
func (t *Table) IndexOn(col string) *Index {
	var found *Index
	for _, idx := range t.indexes {
		if strings.EqualFold(idx.Column, col) {
			if idx.unique {
				return idx
			}
			found = idx
		}
	}
	return found
}

// Indexes returns all indexes on the table.
func (t *Table) Indexes() []*Index {
	out := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, idx)
	}
	return out
}

func (idx *Index) add(key sqlval.Value, rowID int) error {
	cur, ok := idx.tree.Get(key)
	if !ok {
		idx.tree.Put(key, []int{rowID})
		return nil
	}
	ids := cur.([]int)
	if idx.unique && len(ids) > 0 {
		return fmt.Errorf("sqldb: duplicate key %v for unique index %s", key, idx.Name)
	}
	idx.tree.Put(key, append(ids, rowID))
	return nil
}

func (idx *Index) remove(key sqlval.Value, rowID int) {
	cur, ok := idx.tree.Get(key)
	if !ok {
		return
	}
	ids := cur.([]int)
	for i, id := range ids {
		if id == rowID {
			ids = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		idx.tree.Delete(key)
	} else {
		idx.tree.Put(key, ids)
	}
}

// Lookup returns the row IDs whose indexed column equals key.
func (idx *Index) Lookup(key sqlval.Value) []int {
	cur, ok := idx.tree.Get(key)
	if !ok {
		return nil
	}
	return append([]int(nil), cur.([]int)...)
}

// Range returns row IDs whose indexed column lies in [lo, hi] with the
// given bound inclusivities; NULL bounds are unbounded.
func (idx *Index) Range(lo, hi sqlval.Value, loInc, hiInc bool) []int {
	var out []int
	idx.tree.AscendRange(lo, hi, loInc, hiInc, func(_ sqlval.Value, v interface{}) bool {
		out = append(out, v.([]int)...)
		return true
	})
	return out
}

// MinMax returns the smallest and largest indexed key; ok is false for
// an empty index. The range-index publisher uses it.
func (idx *Index) MinMax() (lo, hi sqlval.Value, ok bool) {
	lo, _, ok1 := idx.tree.Min()
	hi, _, ok2 := idx.tree.Max()
	return lo, hi, ok1 && ok2
}

// Insert appends a row, returning its row ID. The row is cloned, so the
// caller may reuse its slice.
func (t *Table) Insert(row sqlval.Row) (int, error) {
	rowID, err := t.insertRaw(row)
	if err != nil {
		return rowID, err
	}
	if t.db != nil {
		t.db.logRecord(WALRecord{Kind: RecInsert, Table: t.key, RowID: rowID, Row: t.rows[rowID], TableVer: t.muts})
	}
	return rowID, nil
}

func (t *Table) insertRaw(row sqlval.Row) (int, error) {
	if len(row) != len(t.schema.Columns) {
		return 0, fmt.Errorf("sqldb: table %s: insert with %d values, want %d", t.schema.Table, len(row), len(t.schema.Columns))
	}
	coerced := make(sqlval.Row, len(row))
	for i, v := range row {
		cv, err := coerce(v, t.schema.Columns[i].Kind)
		if err != nil {
			return 0, fmt.Errorf("sqldb: table %s column %s: %w", t.schema.Table, t.schema.Columns[i].Name, err)
		}
		coerced[i] = cv
	}
	rowID := len(t.rows)
	added := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		if err := idx.add(coerced[idx.col], rowID); err != nil {
			// Roll back exactly the entries added before the failure
			// (map iteration order differs between passes, so the adds
			// are tracked explicitly).
			for _, prior := range added {
				prior.remove(coerced[prior.col], rowID)
			}
			return 0, err
		}
		added = append(added, idx)
	}
	t.rows = append(t.rows, coerced)
	sz := coerced.EncodedSize()
	t.sizes = append(t.sizes, int32(sz))
	t.live++
	t.bytes += int64(sz)
	t.muts++
	return rowID, nil
}

// Delete removes the row with the given ID; it reports whether a live
// row was removed.
func (t *Table) Delete(rowID int) bool {
	if rowID < 0 || rowID >= len(t.rows) || t.rows[rowID] == nil {
		return false
	}
	old := t.rows[rowID]
	if !t.deleteRaw(rowID) {
		return false
	}
	if t.db != nil {
		t.db.logRecord(WALRecord{Kind: RecDelete, Table: t.key, RowID: rowID, Old: old, TableVer: t.muts})
	}
	return true
}

func (t *Table) deleteRaw(rowID int) bool {
	if rowID < 0 || rowID >= len(t.rows) || t.rows[rowID] == nil {
		return false
	}
	row := t.rows[rowID]
	for _, idx := range t.indexes {
		idx.remove(row[idx.col], rowID)
	}
	t.bytes -= int64(row.EncodedSize())
	t.rows[rowID] = nil
	t.sizes[rowID] = 0
	t.live--
	t.muts++
	return true
}

// Update replaces the row with the given ID.
func (t *Table) Update(rowID int, row sqlval.Row) error {
	if rowID < 0 || rowID >= len(t.rows) || t.rows[rowID] == nil {
		return fmt.Errorf("sqldb: table %s: update of absent row %d", t.schema.Table, rowID)
	}
	old := t.rows[rowID]
	if err := t.updateRaw(rowID, row); err != nil {
		return err
	}
	if t.db != nil {
		t.db.logRecord(WALRecord{Kind: RecUpdate, Table: t.key, RowID: rowID, Row: t.rows[rowID], Old: old, TableVer: t.muts})
	}
	return nil
}

func (t *Table) updateRaw(rowID int, row sqlval.Row) error {
	if rowID < 0 || rowID >= len(t.rows) || t.rows[rowID] == nil {
		return fmt.Errorf("sqldb: table %s: update of absent row %d", t.schema.Table, rowID)
	}
	old := t.rows[rowID]
	coerced := make(sqlval.Row, len(row))
	for i, v := range row {
		cv, err := coerce(v, t.schema.Columns[i].Kind)
		if err != nil {
			return err
		}
		coerced[i] = cv
	}
	swapped := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		idx.remove(old[idx.col], rowID)
		if err := idx.add(coerced[idx.col], rowID); err != nil {
			// Restore this index's old entry and undo every index
			// already swapped to the new key.
			idx.add(old[idx.col], rowID)
			for _, prior := range swapped {
				prior.remove(coerced[prior.col], rowID)
				prior.add(old[prior.col], rowID)
			}
			return err
		}
		swapped = append(swapped, idx)
	}
	sz := coerced.EncodedSize()
	t.bytes += int64(sz) - int64(old.EncodedSize())
	t.rows[rowID] = coerced
	t.sizes[rowID] = int32(sz)
	t.muts++
	return nil
}

// Row returns the live row with the given ID, or nil.
func (t *Table) Row(rowID int) sqlval.Row {
	if rowID < 0 || rowID >= len(t.rows) {
		return nil
	}
	return t.rows[rowID]
}

// The undo helpers physically revert one logged mutation, restoring row
// storage, indexes, byte accounting, and the mutation counter exactly —
// a rolled-back atomic batch leaves no trace, so the table's data
// version describes the same state as before the batch and a later WAL
// replay (which never sees aborted records) still agrees bit-for-bit.
// DB.Atomic applies them in reverse batch order under db.mu.

// undoInsert reverts the batch's trailing insert. Inserts append, and a
// batch rolls back newest-first, so the target is always the last row.
func (t *Table) undoInsert(rowID int) error {
	if rowID != len(t.rows)-1 || t.rows[rowID] == nil {
		return fmt.Errorf("sqldb: table %s: cannot undo insert of row %d", t.schema.Table, rowID)
	}
	row := t.rows[rowID]
	for _, idx := range t.indexes {
		idx.remove(row[idx.col], rowID)
	}
	t.bytes -= int64(t.sizes[rowID])
	t.rows = t.rows[:rowID]
	t.sizes = t.sizes[:rowID]
	t.live--
	t.muts--
	return nil
}

// undoDelete restores a deleted row at its original ID.
func (t *Table) undoDelete(rowID int, old sqlval.Row) error {
	if rowID < 0 || rowID >= len(t.rows) || t.rows[rowID] != nil {
		return fmt.Errorf("sqldb: table %s: cannot undo delete of row %d", t.schema.Table, rowID)
	}
	for _, idx := range t.indexes {
		if err := idx.add(old[idx.col], rowID); err != nil {
			return err
		}
	}
	sz := old.EncodedSize()
	t.rows[rowID] = old
	t.sizes[rowID] = int32(sz)
	t.live++
	t.bytes += int64(sz)
	t.muts--
	return nil
}

// undoUpdate restores a row's pre-image.
func (t *Table) undoUpdate(rowID int, old sqlval.Row) error {
	if rowID < 0 || rowID >= len(t.rows) || t.rows[rowID] == nil {
		return fmt.Errorf("sqldb: table %s: cannot undo update of row %d", t.schema.Table, rowID)
	}
	cur := t.rows[rowID]
	for _, idx := range t.indexes {
		idx.remove(cur[idx.col], rowID)
		if err := idx.add(old[idx.col], rowID); err != nil {
			return err
		}
	}
	sz := old.EncodedSize()
	t.bytes += int64(sz) - int64(cur.EncodedSize())
	t.rows[rowID] = old
	t.sizes[rowID] = int32(sz)
	t.muts--
	return nil
}

// Scan visits every live row in insertion order until fn returns false.
func (t *Table) Scan(fn func(rowID int, row sqlval.Row) bool) {
	for id, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(id, row) {
			return
		}
	}
}

// coerce converts v to the declared column kind, widening or narrowing
// numerics and parsing date strings. NULL passes through unchanged.
func coerce(v sqlval.Value, kind sqlval.Kind) (sqlval.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	switch kind {
	case sqlval.KindInt:
		if v.Kind() == sqlval.KindFloat {
			return sqlval.Int(int64(v.AsFloat())), nil
		}
	case sqlval.KindFloat:
		if v.Kind() == sqlval.KindInt {
			return sqlval.Float(v.AsFloat()), nil
		}
	case sqlval.KindDate:
		switch v.Kind() {
		case sqlval.KindString:
			return sqlval.ParseDate(v.AsString())
		case sqlval.KindInt:
			return sqlval.Date(v.AsInt()), nil
		}
	case sqlval.KindString:
		return sqlval.Str(v.String()), nil
	}
	return sqlval.Null(), fmt.Errorf("cannot store %s value as %s", v.Kind(), kind)
}
