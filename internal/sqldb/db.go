package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// DB is one embedded database instance: the stand-in for the MySQL
// server a normal peer hosts (or the PostgreSQL server a HadoopDB worker
// hosts). It is safe for concurrent use; reads share an RWMutex.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	ver    uint64 // schema version; bumped by DDL under mu
	plans  *planCache

	// droppedMuts folds dropped tables' mutation counts (plus one per
	// drop) into the data version, so Versions stays monotonic across
	// DROP TABLE + re-CREATE even when the new table starts at zero
	// mutations. droppedPerTable keeps the same fold per table name for
	// the per-table version vector (TableDataVersions).
	droppedMuts     uint64
	droppedPerTable map[string]uint64

	// Write-ahead log (nil unless EnableWAL ran) and the atomic-batch
	// state: while inBatch is set (only under mu.Lock, by Atomic), table
	// mutations collect in batch instead of reaching the WAL, so an
	// aborted batch can be physically undone and never logged. walOn
	// mirrors wal != nil with the atomic happens-before edge bare Table
	// writers need.
	wal     *WAL
	walOn   atomic.Bool
	inBatch atomic.Bool
	batch   []WALRecord

	// Cost-model statistics: per-table histogram snapshots with their
	// own mutex (built lazily under db.mu.RLock), and a version counter
	// cached plans carry so a statistics rebuild re-plans them.
	statsMu  sync.Mutex
	stats    map[string]*tableStats
	statsVer atomic.Uint64

	// access is the bounded per-table access accounting (heat plane):
	// index probes vs full scans per table, capped table set.
	access accessStats
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		tables:          make(map[string]*Table),
		plans:           newPlanCache(defaultPlanCacheCap),
		stats:           make(map[string]*tableStats),
		droppedPerTable: make(map[string]uint64),
	}
}

// EnableWAL attaches a write-ahead log. It must run before any DDL or
// DML — the log is the database's complete history, so replaying it
// reconstructs the state bit-identically; a non-empty database has
// history the log would miss.
func (db *DB) EnableWAL(cfg WALConfig) (*WAL, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		return nil, fmt.Errorf("sqldb: WAL already enabled")
	}
	if len(db.tables) > 0 || db.ver != 0 || db.droppedMuts != 0 {
		return nil, fmt.Errorf("sqldb: WAL must be enabled on an empty database")
	}
	w, err := newWAL(cfg)
	if err != nil {
		return nil, err
	}
	db.wal = w
	db.walOn.Store(true)
	return w, nil
}

// WAL returns the attached write-ahead log, or nil.
func (db *DB) WAL() *WAL {
	if !db.walOn.Load() {
		return nil
	}
	return db.wal
}

// logRecord routes one mutation record: into the current atomic batch
// when one is open (committed or discarded wholesale later), else
// straight to the WAL. Without a WAL and outside a batch it is a no-op.
func (db *DB) logRecord(rec WALRecord) {
	if db.inBatch.Load() {
		db.batch = append(db.batch, rec)
		return
	}
	if db.walOn.Load() {
		db.wal.append(rec)
	}
}

// Atomic runs fn with the database write-locked and every table
// mutation it performs staged as one batch: on success the batch
// reaches the WAL as a unit (group commit applies downstream of the
// whole batch), on error every staged mutation is physically undone —
// rows, indexes, byte accounting, and mutation counters all revert, so
// the failed batch leaves no trace in either the tables or the log.
// fn must mutate only through Table handles of this database (DB-level
// methods would deadlock on mu; DDL belongs outside batches).
func (db *DB) Atomic(fn func() error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.inBatch.Store(true)
	db.batch = db.batch[:0]
	err := fn()
	db.inBatch.Store(false)
	if err != nil {
		db.rollbackLocked(db.batch)
		db.batch = nil
		walRollbacks.Inc()
		return err
	}
	if db.wal != nil {
		db.wal.appendBatch(db.batch)
	}
	db.batch = nil
	return nil
}

// rollbackLocked undoes a staged batch in reverse order. An undo
// failure is unrecoverable corruption and panics: it cannot happen
// unless fn bypassed the staged tables.
func (db *DB) rollbackLocked(batch []WALRecord) {
	for i := len(batch) - 1; i >= 0; i-- {
		rec := batch[i]
		t := db.table(rec.Table)
		if t == nil {
			panic(fmt.Sprintf("sqldb: rollback: table %s vanished mid-batch", rec.Table))
		}
		var err error
		switch rec.Kind {
		case RecInsert:
			err = t.undoInsert(rec.RowID)
		case RecDelete:
			err = t.undoDelete(rec.RowID, rec.Old)
		case RecUpdate:
			err = t.undoUpdate(rec.RowID, rec.Old)
		default:
			err = fmt.Errorf("non-DML record %s in batch", rec.Kind)
		}
		if err != nil {
			panic(fmt.Sprintf("sqldb: rollback failed: %v", err))
		}
	}
}

// bumpSchemaLocked records a schema change: any cached plan may now be
// stale, so the plan cache and the statistics snapshots are cleared.
// Callers hold db.mu.Lock.
func (db *DB) bumpSchemaLocked() {
	db.ver++
	db.plans.invalidate()
	db.invalidateStatsLocked()
}

// bumpSchemaScopedLocked records a schema change confined to one table
// (DROP TABLE, CREATE INDEX): only cached plans referencing that table
// are dropped; survivors cannot observe the change, so they are
// restamped to the new schema version instead of recompiled. Only the
// table's own statistics snapshot is discarded — statsVer stays put, so
// survivors' sver check keeps matching. Callers hold db.mu.Lock.
func (db *DB) bumpSchemaScopedLocked(table string) {
	db.ver++
	db.plans.invalidateScoped(table, db.ver)
	db.dropStatsLocked(table)
}

// Versions returns the database's monotonic (schema, data) version
// pair. The schema version counts DDL; the data version counts row
// mutations (insert/delete/update) across all tables, folding in
// dropped tables so it never regresses. Result caches key entries on
// this pair: any DDL or DML makes previously cached results
// unservable.
func (db *DB) Versions() (schema, data uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	data = db.droppedMuts
	for _, t := range db.tables {
		data += t.Mutations()
	}
	return db.ver, data
}

// VersionVector returns the schema version plus the per-table data
// version of each named table (its mutation count, folded with any
// same-named dropped tables so the version never regresses across
// DROP + re-CREATE). Unknown tables report their dropped fold (0 if
// never seen). The serving result cache stamps entries with this
// vector, so DML on unrelated tables leaves them servable.
func (db *DB) VersionVector(tables []string) (schema uint64, data []uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	data = make([]uint64, len(tables))
	for i, name := range tables {
		key := strings.ToLower(name)
		v := db.droppedPerTable[key]
		if t := db.tables[key]; t != nil {
			v += t.muts
		}
		data[i] = v
	}
	return db.ver, data
}

// table returns the named table, or nil. Callers must hold db.mu.
func (db *DB) table(name string) *Table {
	return db.tables[strings.ToLower(name)]
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.table(name)
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Schema().Table)
	}
	sort.Strings(out)
	return out
}

// CreateTable creates a table from a schema (programmatic alternative to
// CREATE TABLE, used by the data loader and the TPC-H generator).
func (db *DB) CreateTable(schema *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(schema.Table)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("sqldb: table %s already exists", schema.Table)
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	t.db, t.key = db, key
	db.tables[key] = t
	db.bumpSchemaLocked()
	db.logRecord(WALRecord{Kind: RecCreateTable, Table: key, Schema: schema.Clone()})
	return t, nil
}

// DropTable removes a table; it reports whether the table existed.
func (db *DB) DropTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := db.tables[key]
	delete(db.tables, key)
	if ok {
		db.droppedMuts += t.Mutations() + 1
		db.droppedPerTable[key] += t.Mutations() + 1
		db.bumpSchemaScopedLocked(key)
		db.logRecord(WALRecord{Kind: RecDropTable, Table: key, TableVer: t.Mutations()})
	}
	return ok
}

// InsertRow appends a row to the named table without going through SQL.
func (db *DB) InsertRow(table string, row sqlval.Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.table(table)
	if t == nil {
		return fmt.Errorf("sqldb: unknown table %s", table)
	}
	_, err := t.Insert(row)
	return err
}

// Exec parses and executes a single SQL statement. Repeated statements
// skip the parser: the plan cache keys on the raw SQL text.
func (db *DB) Exec(sql string) (*Result, error) {
	if stmt := db.cachedStmt(sql); stmt != nil {
		return db.execStmtKeyed(stmt, sql)
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.execStmtKeyed(stmt, sql)
}

// Query executes a SELECT statement and returns its result.
func (db *DB) Query(sql string) (*Result, error) {
	if stmt := db.cachedStmt(sql); stmt != nil {
		if _, ok := stmt.(*SelectStmt); ok {
			return db.execStmtKeyed(stmt, sql)
		}
	}
	stmt, err := ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return db.execStmtKeyed(stmt, sql)
}

// cachedStmt returns the parse result cached under the SQL text, or nil.
func (db *DB) cachedStmt(sql string) Statement {
	if !CompileEnabled() {
		return nil
	}
	if e := db.plans.lookup(sql); e != nil {
		return e.stmt
	}
	return nil
}

// Statement counters, resolved once per kind: ExecStmt runs on every
// subquery a data owner serves.
var (
	stmtCounters = map[string]*telemetry.Counter{}
	rowsScanned  = telemetry.Default.Counter("sqldb_rows_scanned_total")
)

func init() {
	for _, kind := range []string{"select", "create_table", "create_index", "insert", "delete", "update", "other"} {
		stmtCounters[kind] = telemetry.Default.Counter("sqldb_statements_total", telemetry.L("kind", kind))
	}
}

// ExecStmt executes an already-parsed statement. SELECTs are keyed into
// the plan cache by their SQL rendering, so the identical subquery
// templates engines ship every round compile once.
func (db *DB) ExecStmt(stmt Statement) (*Result, error) {
	return db.execStmtKeyed(stmt, "")
}

// execStmtKeyed executes stmt; key is the plan-cache key (raw SQL text
// when the statement came in as text, "" to derive it on demand).
func (db *DB) execStmtKeyed(stmt Statement, key string) (*Result, error) {
	res, err := db.execStmt(stmt, key)
	if err == nil && res != nil {
		stmtCounters[stmtKind(stmt)].Inc()
		if res.Stats.RowsScanned > 0 {
			rowsScanned.Add(res.Stats.RowsScanned)
		}
	}
	return res, err
}

// stmtKind names a statement for the per-kind statement counter.
func stmtKind(stmt Statement) string {
	switch stmt.(type) {
	case *SelectStmt:
		return "select"
	case *CreateTableStmt:
		return "create_table"
	case *CreateIndexStmt:
		return "create_index"
	case *InsertStmt:
		return "insert"
	case *DeleteStmt:
		return "delete"
	case *UpdateStmt:
		return "update"
	default:
		return "other"
	}
}

func (db *DB) execStmt(stmt Statement, key string) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		if CompileEnabled() {
			if key == "" {
				key = s.String()
			}
			return db.executeSelectCached(key, s)
		}
		return db.executeSelect(s)
	case *CreateTableStmt:
		if _, err := db.CreateTable(s.Schema); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		t := db.table(s.Table)
		if t == nil {
			return nil, fmt.Errorf("sqldb: unknown table %s", s.Table)
		}
		if err := t.createIndexRaw(s.Name, s.Column, s.Unique); err != nil {
			return nil, err
		}
		// A new index changes access-path choices only for plans that
		// read this table; everyone else's plan survives. The WAL record
		// carries Bump so replay reproduces the version bump too.
		db.bumpSchemaScopedLocked(s.Table)
		db.logRecord(WALRecord{Kind: RecCreateIndex, Table: strings.ToLower(s.Table), IxName: s.Name, IxColumn: s.Column, IxUnique: s.Unique, Bump: true})
		return &Result{}, nil
	case *InsertStmt:
		return db.executeInsert(s)
	case *DeleteStmt:
		return db.executeDelete(s)
	case *UpdateStmt:
		return db.executeUpdate(s)
	default:
		return nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// compileWhere compiles a DELETE/UPDATE predicate once per statement,
// falling back to the interpreter closure when compilation is disabled
// or fails; nil means no WHERE clause.
func compileWhere(f *frame, where Expr) func(sqlval.Row) (bool, error) {
	if where == nil {
		return nil
	}
	if CompileEnabled() {
		if fn, err := compilePred(f, where); err == nil {
			return fn
		}
	}
	return func(row sqlval.Row) (bool, error) { return evalPred(f, where, row) }
}

// executeSelectCached runs s through the compiled executor, reusing the
// cached plan when the schema version still matches. Callers hold
// db.mu.RLock. A compile failure falls back to the interpreter so
// row-at-a-time error semantics (and results on edge cases the compiler
// rejects up front, like projecting an unknown column over zero rows)
// stay identical to the pre-compiled executor.
func (db *DB) executeSelectCached(key string, s *SelectStmt) (*Result, error) {
	// Freshen statistics for the referenced tables first (a cheap
	// staleness probe when nothing changed): if enough rows mutated
	// since a cached plan was costed, the rebuild bumps statsVer and
	// the version check below forces a re-plan, keeping the compiled
	// path's cost decisions in lockstep with the always-fresh
	// interpreter.
	for _, ref := range s.From {
		if t := db.table(ref.Table); t != nil {
			db.ensureStats(t)
		}
	}
	if e := db.plans.lookup(key); e != nil && e.plan != nil && e.ver == db.ver && e.sver == db.statsVer.Load() {
		planCacheHits.Inc()
		return e.plan.run()
	}
	planCacheMisses.Inc()
	plan, err := db.compileSelect(s)
	if err != nil {
		return db.executeSelect(s)
	}
	db.plans.store(&planEntry{key: key, stmt: s, plan: plan, ver: db.ver, sver: db.statsVer.Load(), tables: tablesOf(s)})
	return plan.run()
}

func (db *DB) executeInsert(s *InsertStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	empty := &frame{}
	n := 0
	for _, exprRow := range s.Rows {
		row := make(sqlval.Row, len(exprRow))
		for i, e := range exprRow {
			v, err := evalExpr(empty, e, nil)
			if err != nil {
				return nil, fmt.Errorf("sqldb: INSERT values must be constants: %w", err)
			}
			row[i] = v
		}
		if _, err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Stats: Stats{RowsReturned: int64(n)}}, nil
}

func (db *DB) executeDelete(s *DeleteStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	f := &frame{}
	f.push(s.Table, t.Schema())
	match := compileWhere(f, s.Where)
	var ids []int
	var ferr error
	t.Scan(func(id int, row sqlval.Row) bool {
		if match != nil {
			ok, err := match(row)
			if err != nil {
				ferr = err
				return false
			}
			if !ok {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	for _, id := range ids {
		t.Delete(id)
	}
	return &Result{Stats: Stats{RowsReturned: int64(len(ids))}}, nil
}

func (db *DB) executeUpdate(s *UpdateStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: unknown table %s", s.Table)
	}
	f := &frame{}
	f.push(s.Table, t.Schema())
	cols := make([]int, len(s.Set))
	for i, a := range s.Set {
		ci := t.Schema().ColumnIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: unknown column %s in UPDATE", a.Column)
		}
		cols[i] = ci
	}
	type change struct {
		id  int
		row sqlval.Row
	}
	match := compileWhere(f, s.Where)
	var changes []change
	var ferr error
	t.Scan(func(id int, row sqlval.Row) bool {
		if match != nil {
			ok, err := match(row)
			if err != nil {
				ferr = err
				return false
			}
			if !ok {
				return true
			}
		}
		nr := row.Clone()
		for i, a := range s.Set {
			v, err := evalExpr(f, a.Value, row)
			if err != nil {
				ferr = err
				return false
			}
			nr[cols[i]] = v
		}
		changes = append(changes, change{id: id, row: nr})
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	for _, c := range changes {
		if err := t.Update(c.id, c.row); err != nil {
			return nil, err
		}
	}
	return &Result{Stats: Stats{RowsReturned: int64(len(changes))}}, nil
}
