package sqldb

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"bestpeer/internal/telemetry"
)

// planCache is a bounded LRU of compiled statements keyed by SQL text.
// The engines ship the same subquery template to every peer on every
// round, so the data-owner hot path is lookup-and-run; parse and
// compile happen once per distinct statement per schema version.
//
// Invalidation: every DDL (CREATE TABLE, DROP TABLE, CREATE INDEX)
// bumps the database's schema version under db.mu and clears the cache.
// Entries also carry the version they were compiled under, and a
// version mismatch on lookup is treated as a miss — a second line of
// defense so a stale plan can never run against a changed schema.
//
// Lock order: db.mu (read or write) may be held while taking cache.mu,
// never the reverse.
type planCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *planEntry
	byKey map[string]*list.Element
}

// planEntry is one cached statement: the parse result and, for SELECTs
// that compiled cleanly, the plan.
type planEntry struct {
	key    string
	stmt   Statement
	plan   *selectPlan
	ver    uint64   // schema version the plan was compiled under
	sver   uint64   // statistics version the plan was costed under
	tables []string // lowercased FROM-clause tables (scoped invalidation)
}

// references reports whether the entry's plan reads the given
// (lowercased) table.
func (e *planEntry) references(table string) bool {
	for _, t := range e.tables {
		if t == table {
			return true
		}
	}
	return false
}

// tablesOf lists a SELECT's FROM-clause tables, lowercased.
func tablesOf(s *SelectStmt) []string {
	out := make([]string, 0, len(s.From))
	for _, ref := range s.From {
		out = append(out, strings.ToLower(ref.Table))
	}
	return out
}

// ReferencedTables lists the distinct tables a SELECT reads, lowercased
// and sorted: the key set a result cache needs to stamp an entry with a
// per-table version vector (VersionVector).
func ReferencedTables(s *SelectStmt) []string {
	tables := tablesOf(s)
	sort.Strings(tables)
	out := tables[:0]
	for i, t := range tables {
		if i == 0 || t != tables[i-1] {
			out = append(out, t)
		}
	}
	return out
}

var (
	planCacheHits        = telemetry.Default.Counter("sqldb_plan_cache_hits_total")
	planCacheMisses      = telemetry.Default.Counter("sqldb_plan_cache_misses_total")
	planCacheEvictions   = telemetry.Default.Counter("sqldb_plan_cache_evictions_total")
	planCacheInvalidated = telemetry.Default.Counter("sqldb_plan_cache_invalidations_total")
	planCacheEntries     = telemetry.Default.Gauge("sqldb_plan_cache_entries")
	// Invalidation *events* by scope: "full" (CREATE TABLE clears
	// everything) vs "scoped" (DROP TABLE / CREATE INDEX drop only the
	// plans reading the changed table). planCacheInvalidated keeps
	// counting the entries dropped, as before.
	planCacheInvalFull   = telemetry.Default.Counter("sqldb_plan_cache_invalidation_events_total", telemetry.L("scope", "full"))
	planCacheInvalScoped = telemetry.Default.Counter("sqldb_plan_cache_invalidation_events_total", telemetry.L("scope", "scoped"))
)

// compileOff disables the compiled executor and plan cache when set,
// restoring the retained tree-walking interpreter everywhere. The
// differential fuzz tests and make bench-exec flip it to compare paths.
var compileOff atomic.Bool

// SetCompileEnabled toggles the compiled execution layer (on by
// default). With it off, statements parse and tree-walk per call
// exactly as before the compiled path existed.
func SetCompileEnabled(on bool) { compileOff.Store(!on) }

// CompileEnabled reports whether the compiled execution layer is active.
func CompileEnabled() bool { return !compileOff.Load() }

// batchOff disables the vectorized batch executor when set, keeping the
// row-at-a-time compiled closures (and, with compilation also off, the
// interpreter). The three-way differential fuzz test and make
// bench-batch flip it to compare paths.
var batchOff atomic.Bool

// SetBatchEnabled toggles batch-at-a-time execution (on by default).
// Batch mode only engages when the compiled layer is also enabled;
// statements the batch compiler cannot handle fall back to row-mode
// closures automatically, per statement.
func SetBatchEnabled(on bool) { batchOff.Store(!on) }

// BatchEnabled reports whether the vectorized batch executor is active.
func BatchEnabled() bool { return !batchOff.Load() }

const defaultPlanCacheCap = 256

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// lookup returns the entry cached under key (refreshing its recency) or
// nil. Callers check the entry's version before trusting its plan.
func (c *planCache) lookup(key string) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry)
}

// store inserts or replaces the entry for e.key, evicting from the LRU
// tail past capacity.
func (c *planCache) store(e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[e.key] = c.lru.PushFront(e)
	planCacheEntries.Add(1)
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*planEntry).key)
		planCacheEntries.Add(-1)
		planCacheEvictions.Inc()
	}
}

// invalidate drops every entry; called under db.mu.Lock by DDL.
func (c *planCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	planCacheInvalFull.Inc()
	n := c.lru.Len()
	if n == 0 {
		return
	}
	c.lru.Init()
	c.byKey = make(map[string]*list.Element)
	planCacheEntries.Add(int64(-n))
	planCacheInvalidated.Add(int64(n))
}

// invalidateScoped drops only the entries whose plans read table and
// restamps the survivors to newVer: a plan that never touches the
// changed table stays valid under the new schema version, so dropping
// it would throw away a compilation for nothing. Restamping is safe
// against concurrent lookups because scoped invalidation runs under
// db.mu.Lock while lookups hold db.mu.RLock. Called by DROP TABLE and
// CREATE INDEX.
func (c *planCache) invalidateScoped(table string, newVer uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	planCacheInvalScoped.Inc()
	key := strings.ToLower(table)
	dropped := int64(0)
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*planEntry)
		if e.references(key) {
			c.lru.Remove(el)
			delete(c.byKey, e.key)
			dropped++
			continue
		}
		e.ver = newVer
	}
	if dropped > 0 {
		planCacheEntries.Add(-dropped)
		planCacheInvalidated.Add(dropped)
	}
}

// len reports the number of cached entries.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
