package sqldb

import (
	"strings"
	"testing"

	"bestpeer/internal/sqlval"
)

func liSchema() *Schema {
	return &Schema{Table: "lineitem", Columns: []Column{
		{Name: "l_orderkey", Kind: sqlval.KindInt},
		{Name: "l_qty", Kind: sqlval.KindInt},
		{Name: "l_price", Kind: sqlval.KindFloat},
	}}
}

func ordSchema() *Schema {
	return &Schema{Table: "orders", Columns: []Column{
		{Name: "o_orderkey", Kind: sqlval.KindInt},
		{Name: "o_total", Kind: sqlval.KindFloat},
	}}
}

func TestNeededColumns(t *testing.T) {
	stmt, err := ParseSelect(`SELECT l.l_price, SUM(o.o_total) FROM lineitem l, orders o
		WHERE l.l_orderkey = o.o_orderkey AND l.l_qty > 5 GROUP BY l.l_price`)
	if err != nil {
		t.Fatal(err)
	}
	li := NeededColumns(stmt, stmt.From[0], liSchema())
	if strings.Join(li, ",") != "l_orderkey,l_qty,l_price" {
		t.Errorf("lineitem needed = %v", li)
	}
	ord := NeededColumns(stmt, stmt.From[1], ordSchema())
	if strings.Join(ord, ",") != "o_orderkey,o_total" {
		t.Errorf("orders needed = %v", ord)
	}
}

func TestNeededColumnsStar(t *testing.T) {
	stmt, _ := ParseSelect(`SELECT * FROM lineitem`)
	got := NeededColumns(stmt, stmt.From[0], liSchema())
	if len(got) != 3 {
		t.Errorf("star needed = %v", got)
	}
	stmt2, _ := ParseSelect(`SELECT l_price FROM lineitem WHERE mystery > 0`)
	got2 := NeededColumns(stmt2, stmt2.From[0], liSchema())
	// Unresolvable unqualified ref is ignored (it belongs elsewhere or
	// errors later); only the resolvable ones are pushed.
	if strings.Join(got2, ",") != "l_price" {
		t.Errorf("needed = %v", got2)
	}
}

func TestBuildSubQueryStripsQualifiers(t *testing.T) {
	stmt, _ := ParseSelect(`SELECT l.l_price FROM lineitem l, orders o WHERE l.l_qty > 5 AND l.l_orderkey = o.o_orderkey`)
	perTable, cross := SplitConjunctsPerTable(stmt.Where, stmt.From, []*Schema{liSchema(), ordSchema()})
	if len(perTable[0]) != 1 || len(perTable[1]) != 0 || len(cross) != 1 {
		t.Fatalf("split = %v / %v", perTable, cross)
	}
	sub := BuildSubQuery(stmt.From[0], []string{"l_orderkey", "l_price"}, perTable[0])
	sql := "SELECT l_orderkey, l_price FROM lineitem WHERE " + sub.Where.String()
	if strings.Contains(sql, "l.") {
		t.Errorf("qualifier not stripped: %s", sql)
	}
	if _, err := ParseSelect(sql); err != nil {
		t.Errorf("rendered subquery does not parse: %v", err)
	}
}

func TestEquiJoinCondsAndHash(t *testing.T) {
	stmt, _ := ParseSelect(`SELECT l.l_price FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey AND l.l_price > o.o_total`)
	lb := []Binding{{Alias: "l", Schema: liSchema()}}
	rb := []Binding{{Alias: "o", Schema: ordSchema()}}
	lk, rk, rest := EquiJoinConds(Conjuncts(stmt.Where), lb, rb)
	if len(lk) != 1 || len(rk) != 1 || len(rest) != 1 {
		t.Fatalf("equi = %v/%v rest=%v", lk, rk, rest)
	}
	lrow := sqlval.Row{sqlval.Int(7), sqlval.Int(1), sqlval.Float(10)}
	rrow := sqlval.Row{sqlval.Int(7), sqlval.Float(5)}
	lh, err := JoinKeyHash(lb, lk, lrow)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := JoinKeyHash(rb, rk, rrow)
	if err != nil {
		t.Fatal(err)
	}
	if lh != rh {
		t.Error("equal keys hash differently")
	}
	eq, err := JoinKeysEqual(lb, lk, lrow, rb, rk, rrow)
	if err != nil || !eq {
		t.Errorf("JoinKeysEqual = %v, %v", eq, err)
	}
}

func TestProjectRowsGroupedOverBindings(t *testing.T) {
	stmt, _ := ParseSelect(`SELECT l_qty, SUM(l_price) AS total FROM lineitem GROUP BY l_qty ORDER BY l_qty`)
	b := []Binding{{Alias: "lineitem", Schema: liSchema()}}
	rows := []sqlval.Row{
		{sqlval.Int(1), sqlval.Int(10), sqlval.Float(1.5)},
		{sqlval.Int(2), sqlval.Int(10), sqlval.Float(2.5)},
		{sqlval.Int(3), sqlval.Int(20), sqlval.Float(4.0)},
	}
	res, err := ProjectRows(stmt, b, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0][1].AsFloat() != 4.0 || res.Rows[1][1].AsFloat() != 4.0 {
		t.Errorf("sums = %v, %v", res.Rows[0][1], res.Rows[1][1])
	}
	if res.Columns[1] != "total" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestEvalPredicateOverBindings(t *testing.T) {
	b := []Binding{{Alias: "l", Schema: liSchema()}, {Alias: "o", Schema: ordSchema()}}
	stmt, _ := ParseSelect(`SELECT 1 FROM lineitem l, orders o WHERE l.l_price > o.o_total`)
	row := sqlval.Row{sqlval.Int(1), sqlval.Int(1), sqlval.Float(10), sqlval.Int(1), sqlval.Float(5)}
	ok, err := EvalPredicate(b, stmt.Where, row)
	if err != nil || !ok {
		t.Errorf("pred = %v, %v", ok, err)
	}
	if !Resolvable(b, stmt.Where) {
		t.Error("Resolvable = false")
	}
	if Resolvable(b[:1], stmt.Where) {
		t.Error("cross-table expr resolvable in one binding")
	}
}

func TestSubSchema(t *testing.T) {
	sub, err := SubSchema(liSchema(), []string{"l_price", "l_orderkey"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Columns) != 2 || sub.Columns[0].Name != "l_price" {
		t.Errorf("sub = %+v", sub)
	}
	if _, err := SubSchema(liSchema(), []string{"ghost"}); err == nil {
		t.Error("bad column accepted")
	}
}
