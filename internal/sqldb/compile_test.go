package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bestpeer/internal/sqlval"
)

// The differential tests pit the closure compiler against the retained
// tree-walking interpreter: both must produce the same value (or the
// same error) for every expression over every row, and whole statements
// must return identical rows and identical Stats with compilation on
// and off. The interpreter is the oracle — it predates the compiler and
// is exercised by the rest of the suite.

type fuzzCol struct {
	alias string
	name  string
	kind  sqlval.Kind
}

type exprGen struct {
	rng  *rand.Rand
	cols []fuzzCol
}

func (g *exprGen) pick(kind sqlval.Kind) fuzzCol {
	var c []fuzzCol
	for _, fc := range g.cols {
		if fc.kind == kind {
			c = append(c, fc)
		}
	}
	return c[g.rng.Intn(len(c))]
}

func (g *exprGen) ref(c fuzzCol) Expr {
	if g.rng.Intn(2) == 0 {
		return &ColumnRef{Table: c.alias, Column: c.name}
	}
	return &ColumnRef{Column: c.name}
}

// lit builds a literal of the kind, occasionally NULL.
func (g *exprGen) lit(kind sqlval.Kind) Expr {
	if g.rng.Intn(10) == 0 {
		return &Literal{Val: sqlval.Null()}
	}
	switch kind {
	case sqlval.KindInt:
		return &Literal{Val: sqlval.Int(int64(g.rng.Intn(200) - 100))}
	case sqlval.KindFloat:
		return &Literal{Val: sqlval.Float(float64(g.rng.Intn(2000))/10 - 100)}
	case sqlval.KindDate:
		return &Literal{Val: sqlval.Date(int64(10000 + g.rng.Intn(400)))}
	default:
		return &Literal{Val: sqlval.Str(fmt.Sprintf("s%d", g.rng.Intn(20)))}
	}
}

// numeric builds an expression of numeric value.
func (g *exprGen) numeric(depth int) Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			kind := sqlval.KindInt
			if g.rng.Intn(2) == 0 {
				kind = sqlval.KindFloat
			}
			return g.ref(g.pick(kind))
		}
		if g.rng.Intn(2) == 0 {
			return g.lit(sqlval.KindInt)
		}
		return g.lit(sqlval.KindFloat)
	}
	switch g.rng.Intn(5) {
	case 0:
		return &Binary{Op: "+", L: g.numeric(depth - 1), R: g.numeric(depth - 1)}
	case 1:
		return &Binary{Op: "-", L: g.numeric(depth - 1), R: g.numeric(depth - 1)}
	case 2:
		return &Binary{Op: "*", L: g.numeric(depth - 1), R: g.numeric(depth - 1)}
	case 3:
		// Nonzero literal divisor: both paths share sqlval.Div, but a
		// deterministic divisor keeps the values finite and comparable.
		return &Binary{Op: "/", L: g.numeric(depth - 1), R: &Literal{Val: sqlval.Int(int64(g.rng.Intn(9) + 1))}}
	default:
		return &Unary{Op: "-", E: g.numeric(depth - 1)}
	}
}

// cmp builds a comparison with kind-coherent operands, including the
// date-vs-string coercion path.
func (g *exprGen) cmp() Expr {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	op := ops[g.rng.Intn(len(ops))]
	switch g.rng.Intn(4) {
	case 0:
		return &Binary{Op: op, L: g.numeric(1), R: g.numeric(1)}
	case 1:
		c := g.pick(sqlval.KindString)
		return &Binary{Op: op, L: g.ref(c), R: g.lit(sqlval.KindString)}
	case 2:
		c := g.pick(sqlval.KindDate)
		if g.rng.Intn(2) == 0 {
			// DATE column against a string literal: the coercion rule.
			return &Binary{Op: op, L: g.ref(c), R: &Literal{Val: sqlval.Str("1997-06-15")}}
		}
		return &Binary{Op: op, L: g.ref(c), R: g.lit(sqlval.KindDate)}
	default:
		c := g.pick(sqlval.KindInt)
		return &Binary{Op: op, L: g.ref(c), R: g.lit(sqlval.KindInt)}
	}
}

// pred builds a boolean expression.
func (g *exprGen) pred(depth int) Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			c := g.cols[g.rng.Intn(len(g.cols))]
			return &IsNull{E: g.ref(c), Not: g.rng.Intn(2) == 0}
		case 1:
			e := g.numeric(1)
			return &Between{E: e, Lo: g.lit(sqlval.KindInt), Hi: g.lit(sqlval.KindInt), Not: g.rng.Intn(2) == 0}
		case 2:
			list := []Expr{g.lit(sqlval.KindInt), g.lit(sqlval.KindInt), g.lit(sqlval.KindInt)}
			return &InList{E: g.numeric(1), List: list, Not: g.rng.Intn(2) == 0}
		default:
			return g.cmp()
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return &Binary{Op: "AND", L: g.pred(depth - 1), R: g.pred(depth - 1)}
	case 1:
		return &Binary{Op: "OR", L: g.pred(depth - 1), R: g.pred(depth - 1)}
	default:
		return &Unary{Op: "NOT", E: g.pred(depth - 1)}
	}
}

// row builds a random row matching the generator's column layout, with
// NULLs sprinkled in.
func (g *exprGen) row() sqlval.Row {
	row := make(sqlval.Row, len(g.cols))
	for i, c := range g.cols {
		if g.rng.Intn(8) == 0 {
			row[i] = sqlval.Null()
			continue
		}
		switch c.kind {
		case sqlval.KindInt:
			row[i] = sqlval.Int(int64(g.rng.Intn(200) - 100))
		case sqlval.KindFloat:
			row[i] = sqlval.Float(float64(g.rng.Intn(2000))/10 - 100)
		case sqlval.KindDate:
			row[i] = sqlval.Date(int64(10000 + g.rng.Intn(400)))
		default:
			row[i] = sqlval.Str(fmt.Sprintf("s%d", g.rng.Intn(20)))
		}
	}
	return row
}

func fuzzFrame() (*frame, []fuzzCol) {
	a := &Schema{Table: "a", Columns: []Column{
		{Name: "ai", Kind: sqlval.KindInt},
		{Name: "af", Kind: sqlval.KindFloat},
		{Name: "as1", Kind: sqlval.KindString},
		{Name: "ad", Kind: sqlval.KindDate},
	}}
	b := &Schema{Table: "b", Columns: []Column{
		{Name: "bi", Kind: sqlval.KindInt},
		{Name: "bf", Kind: sqlval.KindFloat},
		{Name: "bs", Kind: sqlval.KindString},
		{Name: "bd", Kind: sqlval.KindDate},
	}}
	f := &frame{}
	f.push("a", a)
	f.push("b", b)
	var cols []fuzzCol
	for _, s := range []*Schema{a, b} {
		for _, c := range s.Columns {
			cols = append(cols, fuzzCol{alias: s.Table, name: c.Name, kind: c.Kind})
		}
	}
	return f, cols
}

func sameValue(a, b sqlval.Value) bool {
	return a.Kind() == b.Kind() && a.String() == b.String()
}

func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// TestDifferentialCompiledVsInterpreter fuzzes random expressions over
// random rows: the compiled closure and the tree-walking interpreter
// must agree on every value, every truth, and every error.
func TestDifferentialCompiledVsInterpreter(t *testing.T) {
	f, cols := fuzzFrame()
	rng := rand.New(rand.NewSource(20260805))
	g := &exprGen{rng: rng, cols: cols}
	for trial := 0; trial < 400; trial++ {
		var e Expr
		if trial%2 == 0 {
			e = g.pred(3)
		} else {
			e = g.numeric(3)
		}
		ce, err := compileExpr(f, e)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, e, err)
		}
		cp, err := compilePred(f, e)
		if err != nil {
			t.Fatalf("trial %d: compile pred %s: %v", trial, e, err)
		}
		for r := 0; r < 16; r++ {
			row := g.row()
			wantV, wantErr := evalExpr(f, e, row)
			gotV, gotErr := ce(row)
			if !sameError(wantErr, gotErr) {
				t.Fatalf("trial %d: %s over %v: interp err %v, compiled err %v", trial, e, row, wantErr, gotErr)
			}
			if wantErr == nil && !sameValue(wantV, gotV) {
				t.Fatalf("trial %d: %s over %v: interp %v (%v), compiled %v (%v)",
					trial, e, row, wantV, wantV.Kind(), gotV, gotV.Kind())
			}
			wantB, wantErr := evalPred(f, e, row)
			gotB, gotErr := cp(row)
			if !sameError(wantErr, gotErr) || wantB != gotB {
				t.Fatalf("trial %d: pred %s over %v: interp (%v,%v), compiled (%v,%v)",
					trial, e, row, wantB, wantErr, gotB, gotErr)
			}
		}
	}
}

// randomStatement renders a random SELECT over the shared test tables:
// filters, joins, grouping, ordering, distinct, limits.
func randomStatement(rng *rand.Rand) string {
	lit := func(kind string) string {
		switch kind {
		case "int":
			return fmt.Sprintf("%d", rng.Intn(30))
		case "float":
			return fmt.Sprintf("%.1f", float64(rng.Intn(3000)))
		default:
			return fmt.Sprintf("DATE '1998-%02d-%02d'", rng.Intn(3)+1, rng.Intn(28)+1)
		}
	}
	ops := []string{"<", "<=", ">", ">=", "="}
	op := func() string { return ops[rng.Intn(len(ops))] }
	switch rng.Intn(5) {
	case 0: // filtered single-table scan
		return fmt.Sprintf("SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice %s %s",
			op(), lit("float"))
	case 1: // index-friendly point/range query
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("SELECT * FROM orders WHERE o_orderkey = %s", lit("int"))
		}
		return fmt.Sprintf("SELECT l_orderkey, l_quantity FROM lineitem WHERE l_shipdate %s %s",
			op(), lit("date"))
	case 2: // join with residual filter
		return fmt.Sprintf("SELECT o.o_orderkey, l.l_quantity FROM orders o, lineitem l "+
			"WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity %s %s", op(), lit("int"))
	case 3: // grouped aggregate, optional HAVING
		q := "SELECT o_custkey, COUNT(*), SUM(o_totalprice) FROM orders GROUP BY o_custkey"
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" HAVING COUNT(*) > %d", rng.Intn(3))
		}
		return q
	default: // order/distinct/limit shapes
		q := "SELECT DISTINCT o_custkey FROM orders ORDER BY o_custkey"
		if rng.Intn(2) == 0 {
			q += " DESC"
		}
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" LIMIT %d", rng.Intn(4)+1)
		}
		return q
	}
}

func rowsKey(res *Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestStatementsCompiledMatchesInterpreted executes random statements
// with the compiled layer on and off against identical databases: rows,
// order, and the Stats record (the cost model's inputs) must be
// bit-identical.
func TestStatementsCompiledMatchesInterpreted(t *testing.T) {
	if !CompileEnabled() {
		t.Skip("compiled layer disabled")
	}
	interp := testDB(t)
	compiled := testDB(t)
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 120; trial++ {
		sql := randomStatement(rng)
		SetCompileEnabled(false)
		want, wantErr := interp.Query(sql)
		SetCompileEnabled(true)
		got, gotErr := compiled.Query(sql)
		if !sameError(wantErr, gotErr) {
			t.Fatalf("trial %d: %q: interp err %v, compiled err %v", trial, sql, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if rowsKey(want) != rowsKey(got) {
			t.Fatalf("trial %d: %q rows differ\ninterp:\n%scompiled:\n%s", trial, sql, rowsKey(want), rowsKey(got))
		}
		if want.Stats != got.Stats {
			t.Fatalf("trial %d: %q stats differ: interp %+v, compiled %+v", trial, sql, want.Stats, got.Stats)
		}
	}
}

// TestCompileFallbackPreservesLazyErrors checks the edge the compiler
// rejects up front but the interpreter only trips per row: projecting
// an unknown column over an empty table returns an empty result, not an
// error, with the compiled layer on.
func TestCompileFallbackPreservesLazyErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE empty_t (a INT)`)
	res, err := db.Query(`SELECT nope FROM empty_t`)
	if err != nil {
		t.Fatalf("unknown column over zero rows must stay lazy: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
}
