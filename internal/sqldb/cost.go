package sqldb

import (
	"math"
	"sort"
	"strings"

	"bestpeer/internal/histogram"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// This file is the local cost model: per-table statistics built from
// the same MHIST histograms the overlay publishes (paper §5.1), and the
// planning decisions they drive — predicate selectivity, index-vs-full
// scan choice, and multi-table join ordering.
//
// Every execution path (interpreter, row-compiled, batch-compiled)
// consults this layer through the same entry points, so the three paths
// always agree on access paths and join order. That is what lets the
// differential fuzz oracle demand bit-identical Stats: the cost model
// changes which plan runs, never what a given plan computes.

var (
	statsBuilds = telemetry.Default.Counter("sqldb_stats_builds_total")
	// costEstimateRatio records estimated/actual scan output rows; a
	// well-calibrated model keeps mass near the 0.8–1.25 buckets.
	costEstimateRatio = telemetry.Default.Histogram("sqldb_cost_estimate_ratio",
		[]float64{0.1, 0.25, 0.5, 0.8, 1.25, 2, 4, 10})
)

const (
	// statsMaxBuckets bounds each per-column histogram.
	statsMaxBuckets = 32
	// statsNDVCap bounds the distinct-value tracking per column.
	statsNDVCap = 4096
	// defaultCondSel is the classic guess for a conjunct the model
	// cannot see through (System R's 1/3).
	defaultCondSel = 1.0 / 3
	// minCondSel keeps multiplied selectivities away from zero so join
	// ordering never divides by nothing.
	minCondSel = 1e-4
	// indexRangeThreshold: a range probe expected to touch more than
	// this fraction of the table reads cheaper as a sequential scan.
	indexRangeThreshold = 0.85
)

// colStats summarizes one column: a 1-D histogram for number-line kinds
// (INT, FLOAT, DATE) plus a distinct-value count for equality estimates.
type colStats struct {
	hist *histogram.Histogram // nil for string columns
	ndv  int
}

// tableStats is the statistics snapshot of one table, tagged with the
// mutation count it was built at so staleness is detectable.
type tableStats struct {
	muts uint64
	rows int
	cols map[string]*colStats // by lowercased column name
}

// stale reports whether the table has mutated enough since the snapshot
// to warrant a rebuild (more than ~20% churn, with slack for tiny
// tables so single-row test inserts do not thrash the builder).
func (s *tableStats) stale(t *Table) bool {
	d := t.Mutations() - s.muts
	return d > uint64(s.rows/5+16)
}

// ensureStats returns fresh statistics for t, building (or rebuilding)
// them when absent or stale. This is the auto-build hook: the first
// query after a bulk load pays one scan, and cost-based planning has
// histograms with no manual Build call. Safe under db.mu.RLock — the
// stats map has its own mutex and table reads are lock-free for
// readers. Every (re)build bumps statsVer, which cached plans carry, so
// a plan compiled against old statistics is re-planned on next lookup.
func (db *DB) ensureStats(t *Table) *tableStats {
	key := strings.ToLower(t.Schema().Table)
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	s := db.stats[key]
	if s != nil && !s.stale(t) {
		return s
	}
	s = buildTableStats(t)
	db.stats[key] = s
	db.statsVer.Add(1)
	statsBuilds.Inc()
	return s
}

// invalidateStatsLocked drops every statistics snapshot. Called under
// db.mu.Lock by DDL, alongside the plan-cache invalidation.
func (db *DB) invalidateStatsLocked() {
	db.statsMu.Lock()
	db.stats = make(map[string]*tableStats)
	db.statsMu.Unlock()
	db.statsVer.Add(1)
}

// dropStatsLocked discards one table's statistics snapshot without
// bumping statsVer: scoped invalidation already removed every cached
// plan that read the table, and a global statsVer bump would needlessly
// re-plan the survivors. Called under db.mu.Lock.
func (db *DB) dropStatsLocked(table string) {
	db.statsMu.Lock()
	delete(db.stats, strings.ToLower(table))
	db.statsMu.Unlock()
}

// buildTableStats scans the table once, building a 1-D MHIST histogram
// per number-line column and a distinct count per column.
func buildTableStats(t *Table) *tableStats {
	schema := t.Schema()
	s := &tableStats{muts: t.Mutations(), rows: t.NumRows(), cols: make(map[string]*colStats, len(schema.Columns))}
	numeric := make([]int, 0, len(schema.Columns))
	points := make(map[int][]float64)
	distinct := make([]map[sqlval.Value]struct{}, len(schema.Columns))
	for ci, col := range schema.Columns {
		distinct[ci] = make(map[sqlval.Value]struct{})
		switch col.Kind {
		case sqlval.KindInt, sqlval.KindFloat, sqlval.KindDate:
			numeric = append(numeric, ci)
			points[ci] = make([]float64, 0, t.NumRows())
		}
	}
	t.Scan(func(_ int, row sqlval.Row) bool {
		for ci := range schema.Columns {
			v := row[ci]
			if len(distinct[ci]) < statsNDVCap {
				distinct[ci][v] = struct{}{}
			}
		}
		for _, ci := range numeric {
			if v := row[ci]; !v.IsNull() {
				points[ci] = append(points[ci], v.AsFloat())
			}
		}
		return true
	})
	for ci, col := range schema.Columns {
		cs := &colStats{ndv: len(distinct[ci])}
		if pts, ok := points[ci]; ok && len(pts) > 0 {
			dim := make([][]float64, len(pts))
			for i, p := range pts {
				dim[i] = []float64{p}
			}
			if h, err := histogram.Build(schema.Table, []string{col.Name}, dim, statsMaxBuckets); err == nil {
				cs.hist = h
			}
		}
		s.cols[strings.ToLower(col.Name)] = cs
	}
	return s
}

// colInterval is the merged literal bound of one column's conjuncts.
type colInterval struct {
	lo, hi float64 // ±Inf when unbounded
	eq     bool
	eqVal  sqlval.Value
}

// extractBounds walks single-table conjuncts and merges column-vs-
// literal comparisons into per-column intervals, counting conjuncts the
// extractor cannot model (returned as opaque). This is the planner-side
// twin of chooseAccessPath's probe discovery, producing estimates
// rather than probes.
func extractBounds(t *Table, conjuncts []Expr) (bounds map[string]*colInterval, opaque int) {
	bounds = make(map[string]*colInterval)
	get := func(col string) *colInterval {
		key := strings.ToLower(col)
		iv := bounds[key]
		if iv == nil {
			iv = &colInterval{lo: math.Inf(-1), hi: math.Inf(1)}
			bounds[key] = iv
		}
		return iv
	}
	for _, c := range conjuncts {
		switch x := c.(type) {
		case *Binary:
			var col, op string
			var val sqlval.Value
			if ref, ok := x.L.(*ColumnRef); ok {
				if lit, okL := literalOf(x.R); okL {
					col, op, val = ref.Column, x.Op, lit
				}
			}
			if col == "" {
				if ref, ok := x.R.(*ColumnRef); ok {
					if lit, okL := literalOf(x.L); okL {
						col, op, val = ref.Column, flipOp(x.Op), lit
					}
				}
			}
			if col == "" || t.Schema().ColumnIndex(col) < 0 {
				opaque++
				continue
			}
			val = coerceForColumn(t, col, val)
			iv := get(col)
			switch op {
			case "=":
				iv.eq, iv.eqVal = true, val
				f := val.AsFloat()
				iv.lo, iv.hi = math.Max(iv.lo, f), math.Min(iv.hi, f)
			case ">", ">=":
				iv.lo = math.Max(iv.lo, val.AsFloat())
			case "<", "<=":
				iv.hi = math.Min(iv.hi, val.AsFloat())
			default:
				opaque++
			}
		case *Between:
			ref, ok := x.E.(*ColumnRef)
			if !ok || x.Not || t.Schema().ColumnIndex(ref.Column) < 0 {
				opaque++
				continue
			}
			lo, okLo := literalOf(x.Lo)
			hi, okHi := literalOf(x.Hi)
			if !okLo || !okHi {
				opaque++
				continue
			}
			iv := get(ref.Column)
			iv.lo = math.Max(iv.lo, coerceForColumn(t, ref.Column, lo).AsFloat())
			iv.hi = math.Min(iv.hi, coerceForColumn(t, ref.Column, hi).AsFloat())
		default:
			opaque++
		}
	}
	return bounds, opaque
}

// selectivity estimates the fraction of t's rows satisfying the
// conjuncts, combining per-column histogram estimates under the usual
// independence assumption.
func (s *tableStats) selectivity(t *Table, conjuncts []Expr) float64 {
	if len(conjuncts) == 0 {
		return 1
	}
	bounds, opaque := extractBounds(t, conjuncts)
	// Multiply in sorted column order: float multiplication is not
	// exactly commutative, and two DB instances holding identical data
	// must reach bit-identical estimates for the differential oracle.
	cols := make([]string, 0, len(bounds))
	for col := range bounds {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	sel := 1.0
	for _, col := range cols {
		iv := bounds[col]
		cs := s.cols[col]
		switch {
		case cs == nil:
			sel *= defaultCondSel
		case iv.eq:
			if cs.ndv > 0 {
				sel *= 1 / float64(cs.ndv)
			} else {
				sel *= defaultCondSel
			}
		case cs.hist != nil:
			sel *= cs.hist.Selectivity([]histogram.Interval1{{Lo: iv.lo, Hi: iv.hi}})
		default:
			sel *= defaultCondSel
		}
	}
	for i := 0; i < opaque; i++ {
		sel *= defaultCondSel
	}
	return math.Min(1, math.Max(minCondSel, sel))
}

// rangeSelectivity estimates the fraction of the table an index range
// probe would visit; ok is false when no histogram covers the column.
func (s *tableStats) rangeSelectivity(path accessPath) (float64, bool) {
	cs := s.cols[strings.ToLower(path.index.Column)]
	if cs == nil || cs.hist == nil {
		return 1, false
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	if !path.lo.IsNull() {
		lo = path.lo.AsFloat()
	}
	if !path.hi.IsNull() {
		hi = path.hi.AsFloat()
	}
	return cs.hist.Selectivity([]histogram.Interval1{{Lo: lo, Hi: hi}}), true
}

// scanChoice is the cost model's verdict for one table access: the
// (possibly demoted) access path plus the cardinality estimates the
// EXPLAIN surface and misprediction telemetry report.
type scanChoice struct {
	path     accessPath
	estSel   float64 // estimated fraction of rows surviving the filter
	estRows  float64 // estimated filter output cardinality
	baseRows int
	// demoted records that an index range probe was rejected as too
	// unselective (EXPLAIN prints it; tests assert on it).
	demoted bool
}

// planScan chooses how to read one table: discover the best index probe
// the conjuncts allow, then keep it only when statistics say it pays.
// Equality probes always win; range probes are demoted to a full scan
// above indexRangeThreshold; missing statistics preserve the historical
// always-index behavior. Interpreter and compiled paths both route
// through here, so their Stats (IndexUsed, RowsScanned) stay identical.
func (db *DB) planScan(t *Table, alias string, conjuncts []Expr) scanChoice {
	stats := db.ensureStats(t)
	c := scanChoice{
		path:     chooseAccessPath(t, alias, conjuncts),
		estSel:   stats.selectivity(t, conjuncts),
		baseRows: t.NumRows(),
	}
	c.estRows = float64(c.baseRows) * c.estSel
	if c.path.index != nil && !c.path.useEq {
		if rsel, ok := stats.rangeSelectivity(c.path); ok && rsel > indexRangeThreshold {
			c.path = accessPath{}
			c.demoted = true
		}
	}
	return c
}

// observeEstimate feeds the estimate/actual ratio histogram after a
// scan ran. Zero-actual scans clamp to the top bucket: the model
// predicted rows that never appeared.
func (c *scanChoice) observeEstimate(actual int64) {
	if actual <= 0 {
		if c.estRows > 0.5 {
			costEstimateRatio.Observe(10)
		}
		return
	}
	costEstimateRatio.Observe(c.estRows / float64(actual))
}

// joinOrder computes the execution order of the FROM entries: start at
// the smallest estimated filtered table, then greedily append the
// candidate minimizing the estimated intermediate size, preferring
// tables connected by an equi-join conjunct (an unconnected pick is a
// cross product and estimates accordingly). Ties keep FROM order, so
// statements the model cannot separate behave exactly as before. The
// returned slice is a permutation of [0..n); every execution path
// applies the same permutation.
func (db *DB) joinOrder(tables []*Table, refs []TableRef, schemas []*Schema, perTable [][]Expr, cross []Expr) []int {
	n := len(tables)
	order := make([]int, 0, n)
	if n == 1 {
		return append(order, 0)
	}
	ests := make([]float64, n)
	for i, t := range tables {
		ests[i] = math.Max(1, float64(t.NumRows())*db.ensureStats(t).selectivity(t, perTable[i]))
	}
	// connected[i][j]: some cross conjunct is an equality resolvable
	// over {i,j} jointly but over neither alone.
	connected := make([][]bool, n)
	for i := range connected {
		connected[i] = make([]bool, n)
	}
	for _, c := range cross {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				fi := &frame{}
				fi.push(refs[i].Alias, schemas[i])
				fj := &frame{}
				fj.push(refs[j].Alias, schemas[j])
				fij := &frame{}
				fij.push(refs[i].Alias, schemas[i])
				fij.push(refs[j].Alias, schemas[j])
				if fij.resolvable(c) && !fi.resolvable(c) && !fj.resolvable(c) {
					connected[i][j], connected[j][i] = true, true
				}
			}
		}
	}

	used := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if ests[i] < ests[start] {
			start = i
		}
	}
	order = append(order, start)
	used[start] = true
	curEst := ests[start]
	for len(order) < n {
		best, bestEst, bestConn := -1, math.Inf(1), false
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			conn := false
			for _, i := range order {
				if connected[i][j] {
					conn = true
					break
				}
			}
			// Equi-joins assume key-foreign-key shape (output near the
			// larger side); cross products multiply.
			var est float64
			if conn {
				est = math.Max(curEst, ests[j])
			} else {
				est = curEst * ests[j]
			}
			// Prefer connected candidates outright: a cross product now
			// can never beat joining a linked table first.
			if (conn && !bestConn) || (conn == bestConn && est < bestEst) {
				best, bestEst, bestConn = j, est, conn
			}
		}
		order = append(order, best)
		used[best] = true
		curEst = bestEst
	}
	return order
}

// identityOrder reports whether the permutation is 0,1,2,...
func identityOrder(order []int) bool {
	for i, v := range order {
		if i != v {
			return false
		}
	}
	return true
}
