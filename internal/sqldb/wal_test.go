package sqldb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"bestpeer/internal/sqlval"
)

func walTestSchema(name string) *Schema {
	return &Schema{
		Table: name,
		Columns: []Column{
			{Name: "id", Kind: sqlval.KindInt},
			{Name: "val", Kind: sqlval.KindString},
			{Name: "amt", Kind: sqlval.KindFloat},
		},
		PrimaryKey: "id",
	}
}

func walRow(id int, val string, amt float64) sqlval.Row {
	return sqlval.Row{sqlval.Int(int64(id)), sqlval.Str(val), sqlval.Float(amt)}
}

// TestWALReplayBitIdentical drives DDL and DML through every write path
// (SQL and programmatic) and checks that replaying the flushed log
// reproduces table contents, index lookups, and Versions() exactly.
func TestWALReplayBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	db := NewDB()
	w, err := db.EnableWAL(WALConfig{Path: path, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(walTestSchema("orders")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE items (sku INT, name STRING)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX idx_val ON orders (val)`); err != nil {
		t.Fatal(err)
	}
	ot := db.Table("orders")
	for i := 0; i < 17; i++ {
		if _, err := ot.Insert(walRow(i, fmt.Sprintf("v%d", i%5), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`INSERT INTO items VALUES (1, 'widget'), (2, 'gadget')`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE FROM orders WHERE id = 3`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UPDATE orders SET amt = 99.5 WHERE id = 7`); err != nil {
		t.Fatal(err)
	}
	if !db.DropTable("items") {
		t.Fatal("drop failed")
	}
	w.Flush()

	back, err := ReplayWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.StateFingerprint(), db.StateFingerprint(); got != want {
		t.Fatalf("replayed fingerprint %x != live %x", got, want)
	}
	s1, d1 := db.Versions()
	s2, d2 := back.Versions()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("versions diverged: live (%d,%d) replayed (%d,%d)", s1, d1, s2, d2)
	}
	// Index lookups answer identically.
	for _, key := range []int64{0, 7, 16} {
		a := db.Table("orders").IndexOn("id").Lookup(sqlval.Int(key))
		b := back.Table("orders").IndexOn("id").Lookup(sqlval.Int(key))
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("index lookup %d: %v vs %v", key, a, b)
		}
	}
}

// TestWALCrashLosesUncommittedTail crashes with records pending: replay
// must land exactly on the last group-commit boundary.
func TestWALCrashLosesUncommittedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	db := NewDB()
	w, err := db.EnableWAL(WALConfig{Path: path, GroupSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(walTestSchema("orders")); err != nil {
		t.Fatal(err)
	}
	ref := NewDB() // shadow applying only what will commit
	if _, err := ref.CreateTable(walTestSchema("orders")); err != nil {
		t.Fatal(err)
	}
	// 7 inserts after the create_table record = seq 8: one full group.
	// 3 more stay pending and must vanish at the crash.
	for i := 0; i < 10; i++ {
		if _, err := db.Table("orders").Insert(walRow(i, "x", 1)); err != nil {
			t.Fatal(err)
		}
		if i < 7 {
			if _, err := ref.Table("orders").Insert(walRow(i, "x", 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := w.CommittedSeq(); got != 8 {
		t.Fatalf("committed seq = %d, want 8", got)
	}
	w.Crash()
	back, err := ReplayWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Table("orders").NumRows() != 7 {
		t.Fatalf("replayed rows = %d, want 7", back.Table("orders").NumRows())
	}
	if got, want := back.StateFingerprint(), ref.StateFingerprint(); got != want {
		t.Fatalf("replay fingerprint %x != committed-prefix fingerprint %x", got, want)
	}
}

// TestAtomicRollbackLeavesNoTrace aborts a batch mid-way: tables,
// indexes, versions, and the WAL must all look as if it never ran.
func TestAtomicRollbackLeavesNoTrace(t *testing.T) {
	db := NewDB()
	w, err := db.EnableWAL(WALConfig{GroupSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(walTestSchema("orders")); err != nil {
		t.Fatal(err)
	}
	ot := db.Table("orders")
	for i := 0; i < 5; i++ {
		if _, err := ot.Insert(walRow(i, "seed", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	before := db.StateFingerprint()
	seqBefore := w.Seq()

	err = db.Atomic(func() error {
		if _, err := ot.Insert(walRow(100, "batch", 1)); err != nil {
			return err
		}
		if !ot.Delete(2) {
			return fmt.Errorf("delete failed")
		}
		if err := ot.Update(4, walRow(4, "changed", 9)); err != nil {
			return err
		}
		// Duplicate primary key: the batch dies here.
		_, err := ot.Insert(walRow(0, "dup", 2))
		return err
	})
	if err == nil {
		t.Fatal("batch should have failed on the duplicate key")
	}
	if got := db.StateFingerprint(); got != before {
		t.Fatalf("rollback left a trace: fingerprint %x != %x", got, before)
	}
	if w.Seq() != seqBefore {
		t.Fatalf("aborted batch reached the WAL: seq %d -> %d", seqBefore, w.Seq())
	}

	// The same batch without the poison pill commits and replays.
	err = db.Atomic(func() error {
		if _, err := ot.Insert(walRow(100, "batch", 1)); err != nil {
			return err
		}
		if !ot.Delete(2) {
			return fmt.Errorf("delete failed")
		}
		return ot.Update(4, walRow(4, "changed", 9))
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := w.CommittedRecords()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReplayRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.StateFingerprint(), db.StateFingerprint(); got != want {
		t.Fatalf("replay after batch: fingerprint %x != %x", got, want)
	}
}

// TestWALFeedSinceAndTruncate exercises the CDC tail: ordered delivery,
// pre-images on deletes, and the truncation gap signalling a resync.
func TestWALFeedSinceAndTruncate(t *testing.T) {
	db := NewDB()
	w, err := db.EnableWAL(WALConfig{GroupSize: 1, Keep: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(walTestSchema("orders")); err != nil {
		t.Fatal(err)
	}
	ot := db.Table("orders")
	for i := 0; i < 3; i++ {
		if _, err := ot.Insert(walRow(i, "x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	ot.Delete(1)

	recs, ok := w.Since(1) // skip the create_table record
	if !ok || len(recs) != 4 {
		t.Fatalf("since(1): ok=%v len=%d", ok, len(recs))
	}
	if recs[3].Kind != RecDelete || recs[3].Old == nil {
		t.Fatalf("delete record missing pre-image: %+v", recs[3])
	}
	if recs[0].Seq != 2 || recs[3].Seq != 5 {
		t.Fatalf("sequence numbers wrong: %d..%d", recs[0].Seq, recs[3].Seq)
	}
	for i, rec := range recs[:3] {
		if rec.TableVer != uint64(i+1) {
			t.Fatalf("record %d table version = %d, want %d", i, rec.TableVer, i+1)
		}
	}

	w.Truncate(3)
	if _, ok := w.Since(1); ok {
		t.Fatal("truncated gap not reported")
	}
	recs, ok = w.Since(3)
	if !ok || len(recs) != 2 {
		t.Fatalf("since(3) after truncate: ok=%v len=%d", ok, len(recs))
	}
}

// TestVersionVectorScopedToTables: DML moves only the mutated table's
// version; drops fold so the vector never regresses.
func TestVersionVectorScopedToTables(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable(walTestSchema("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(walTestSchema("b")); err != nil {
		t.Fatal(err)
	}
	_, vec := db.VersionVector([]string{"a", "b"})
	if vec[0] != 0 || vec[1] != 0 {
		t.Fatalf("fresh vector = %v", vec)
	}
	if _, err := db.Table("a").Insert(walRow(1, "x", 1)); err != nil {
		t.Fatal(err)
	}
	_, vec = db.VersionVector([]string{"a", "b"})
	if vec[0] != 1 || vec[1] != 0 {
		t.Fatalf("after insert into a: vector = %v", vec)
	}
	aVer := vec[0]
	db.DropTable("a")
	if _, err := db.CreateTable(walTestSchema("a")); err != nil {
		t.Fatal(err)
	}
	_, vec = db.VersionVector([]string{"a", "b"})
	if vec[0] <= aVer {
		t.Fatalf("drop+recreate regressed a's version: %d -> %d", aVer, vec[0])
	}
}

// TestChaosWALCrashMidGroupCommit is the crash arm of make chaos: a
// seeded op stream (inserts, deletes, updates, atomic batches, aborted
// batches) is cut off at an arbitrary point — usually mid-group — and
// recovery must land bit-identically on the committed prefix.
func TestChaosWALCrashMidGroupCommit(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			path := filepath.Join(t.TempDir(), "wal.log")
			db := NewDB()
			w, err := db.EnableWAL(WALConfig{Path: path, GroupSize: 1 + rng.Intn(9), Keep: -1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.CreateTable(walTestSchema("orders")); err != nil {
				t.Fatal(err)
			}
			ot := db.Table("orders")
			// committedOps replays one WAL record each: the reference
			// timeline recovery must reproduce.
			type op struct {
				kind  RecordKind
				id    int
				row   sqlval.Row
				rowID int
			}
			var oplog []op
			next := 0
			live := []int{}
			doInsert := func(tab *Table) (op, error) {
				r := walRow(next, fmt.Sprintf("s%d", rng.Intn(10)), float64(rng.Intn(100)))
				id, err := tab.Insert(r)
				if err != nil {
					return op{}, err
				}
				next++
				live = append(live, id)
				return op{kind: RecInsert, row: r, rowID: id}, nil
			}
			steps := 40 + rng.Intn(80)
			for s := 0; s < steps; s++ {
				switch k := rng.Intn(10); {
				case k < 5:
					o, err := doInsert(ot)
					if err != nil {
						t.Fatal(err)
					}
					oplog = append(oplog, o)
				case k < 7 && len(live) > 0:
					i := rng.Intn(len(live))
					id := live[i]
					if !ot.Delete(id) {
						t.Fatalf("delete of live row %d failed", id)
					}
					live = append(live[:i], live[i+1:]...)
					oplog = append(oplog, op{kind: RecDelete, rowID: id})
				case k < 8 && len(live) > 0:
					id := live[rng.Intn(len(live))]
					r := walRow(int(ot.Row(id)[0].AsInt()), "upd", float64(rng.Intn(50)))
					if err := ot.Update(id, r); err != nil {
						t.Fatal(err)
					}
					oplog = append(oplog, op{kind: RecUpdate, row: r, rowID: id})
				case k < 9:
					// Atomic batch; half of them abort and must not
					// disturb the committed timeline.
					abort := rng.Intn(2) == 0
					var staged []op
					savedNext, savedLive := next, append([]int(nil), live...)
					err := db.Atomic(func() error {
						for b := 0; b < 1+rng.Intn(4); b++ {
							o, err := doInsert(ot)
							if err != nil {
								return err
							}
							staged = append(staged, o)
						}
						if abort {
							return fmt.Errorf("injected abort")
						}
						return nil
					})
					if abort {
						if err == nil {
							t.Fatal("abort lost")
						}
						next, live = savedNext, savedLive
					} else {
						if err != nil {
							t.Fatal(err)
						}
						oplog = append(oplog, staged...)
					}
				default:
					w.Flush()
				}
			}

			w.Crash() // pending tail lost — usually mid-group

			back, err := ReplayWALFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: the same committed prefix applied to a fresh DB.
			committed := int(w.CommittedSeq()) - 1 // minus the create_table record
			ref := NewDB()
			if _, err := ref.CreateTable(walTestSchema("orders")); err != nil {
				t.Fatal(err)
			}
			rt := ref.Table("orders")
			for _, o := range oplog[:committed] {
				switch o.kind {
				case RecInsert:
					if _, err := rt.Insert(o.row); err != nil {
						t.Fatal(err)
					}
				case RecDelete:
					if !rt.Delete(o.rowID) {
						t.Fatal("reference delete failed")
					}
				case RecUpdate:
					if err := rt.Update(o.rowID, o.row); err != nil {
						t.Fatal(err)
					}
				}
			}
			if got, want := back.StateFingerprint(), ref.StateFingerprint(); got != want {
				t.Fatalf("seed %d: recovered fingerprint %x != committed-prefix %x", seed, got, want)
			}
		})
	}
}
