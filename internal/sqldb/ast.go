package sqldb

import (
	"fmt"
	"strings"

	"bestpeer/internal/sqlval"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Schema *Schema
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
	Unique bool
}

// InsertStmt is INSERT INTO ... VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// DeleteStmt is DELETE FROM ... [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr // nil = all rows
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE ... SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// TableRef names a table in a FROM clause, optionally aliased.
type TableRef struct {
	Table string
	Alias string // equals Table when no alias given
}

// SelectItem is one output expression of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // "" = derive from expression
	Star  bool   // SELECT * or alias.*
	Table string // qualifier for alias.*; "" = all tables
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query. JOIN ... ON conditions are normalized
// into Where as conjuncts during parsing, so From is a plain table list.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = no limit
}

// String renders the statement back to SQL. The rendering is
// deterministic, so it doubles as the plan-cache key for statements that
// arrive already parsed (the subqueries engines ship to data owners).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if item.Star {
			if item.Table != "" {
				sb.WriteString(item.Table)
				sb.WriteString(".*")
			} else {
				sb.WriteString("*")
			}
			continue
		}
		sb.WriteString(item.Expr.String())
		if item.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(item.Alias)
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(ref.Table)
			if ref.Alias != "" && !strings.EqualFold(ref.Alias, ref.Table) {
				sb.WriteString(" ")
				sb.WriteString(ref.Alias)
			}
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is a SQL expression node. String renders the expression in SQL
// syntax; the engines use it to rewrite and re-emit subqueries.
type Expr interface {
	fmt.Stringer
	expr()
}

// ColumnRef references a (possibly qualified) column.
type ColumnRef struct {
	Table  string // "" = unqualified
	Column string
}

// Literal is a constant value.
type Literal struct {
	Val sqlval.Value
}

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or logical (AND, OR).
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT or numeric negation.
type Unary struct {
	Op string // "NOT" or "-"
	E  Expr
}

// FuncCall is a function call; the engine implements the SQL aggregates
// COUNT, SUM, AVG, MIN, MAX (Star marks COUNT(*)).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

// Between is E [NOT] BETWEEN Lo AND Hi.
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

// InList is E [NOT] IN (v1, v2, ...).
type InList struct {
	E    Expr
	List []Expr
	Not  bool
}

// IsNull is E IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Not bool
}

func (*ColumnRef) expr() {}
func (*Literal) expr()   {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*FuncCall) expr()  {}
func (*Between) expr()   {}
func (*InList) expr()    {}
func (*IsNull) expr()    {}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

func (e *Literal) String() string {
	switch e.Val.Kind() {
	case sqlval.KindString:
		return "'" + strings.ReplaceAll(e.Val.AsString(), "'", "''") + "'"
	case sqlval.KindDate:
		return "DATE '" + e.Val.String() + "'"
	default:
		return e.Val.String()
	}
}

func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e *Unary) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.E.String() + ")"
	}
	return "(-" + e.E.String() + ")"
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e *Between) String() string {
	op := " BETWEEN "
	if e.Not {
		op = " NOT BETWEEN "
	}
	return "(" + e.E.String() + op + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

func (e *InList) String() string {
	items := make([]string, len(e.List))
	for i, v := range e.List {
		items[i] = v.String()
	}
	op := " IN ("
	if e.Not {
		op = " NOT IN ("
	}
	return "(" + e.E.String() + op + strings.Join(items, ", ") + "))"
}

func (e *IsNull) String() string {
	if e.Not {
		return "(" + e.E.String() + " IS NOT NULL)"
	}
	return "(" + e.E.String() + " IS NULL)"
}

// HasAggregate reports whether the expression contains an aggregate
// function call.
func HasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *FuncCall:
		if isAggregateName(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return HasAggregate(x.L) || HasAggregate(x.R)
	case *Unary:
		return HasAggregate(x.E)
	case *Between:
		return HasAggregate(x.E) || HasAggregate(x.Lo) || HasAggregate(x.Hi)
	case *InList:
		if HasAggregate(x.E) {
			return true
		}
		for _, v := range x.List {
			if HasAggregate(v) {
				return true
			}
		}
	case *IsNull:
		return HasAggregate(x.E)
	}
	return false
}

func isAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// Conjuncts splits an expression into its top-level AND terms.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && strings.EqualFold(b.Op, "AND") {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines expressions into a conjunction; nil if the list is empty.
func AndAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// ColumnsIn collects every column reference in the expression.
func ColumnsIn(e Expr) []*ColumnRef {
	var out []*ColumnRef
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *ColumnRef:
			out = append(out, x)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.E)
		case *FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *Between:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *InList:
			walk(x.E)
			for _, v := range x.List {
				walk(v)
			}
		case *IsNull:
			walk(x.E)
		}
	}
	walk(e)
	return out
}
