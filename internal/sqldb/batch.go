package sqldb

import (
	"sync"

	"bestpeer/internal/sqlval"
)

// This file is the batch executor runtime: the per-plan structures that
// drive scans, hash joins, and projection batch-at-a-time, reusing the
// row plan's shape (same access paths, same join order, same sinks) so
// that results and Stats are bit-identical to the row-compiled path.
//
// A batchPlan is stateless across runs — per-run scratch (bctx) comes
// from per-plan sync.Pools so concurrent readers under db.mu.RLock never
// share vectors and steady-state execution allocates nothing per batch.

// bscan is one table scan's batch program: the scan frame's column
// kinds, the fused filter predicate, and the columns it needs loaded.
type bscan struct {
	kinds      []sqlval.Kind
	filter     bpred // nil = no per-table conjuncts
	filterOffs []int
	pool       sync.Pool
}

func (bs *bscan) get() *bctx {
	if c, ok := bs.pool.Get().(*bctx); ok && c != nil {
		c.mismatch = false
		c.rows = c.own[:0]
		return c
	}
	return newBctx(bs.kinds)
}

func (bs *bscan) put(c *bctx) { bs.pool.Put(c) }

// applyFilter runs the scan filter over the staged batch and shrinks the
// selection vector to the surviving rows (NULL collapses to false at
// this boundary, like the row filter). Returns false on a column kind
// mismatch.
func (bs *bscan) applyFilter(ctx *bctx) bool {
	if bs.filter == nil {
		return true
	}
	if !ctx.loadCols(bs.filterOffs) {
		return false
	}
	pv := bs.filter(ctx)
	out := ctx.selBuf[:0]
	for i := 0; i < ctx.n; i++ {
		if pv.val[i] && !pv.null[i] {
			out = append(out, int32(i))
		}
	}
	ctx.selBuf = out
	ctx.sel = out
	batchSelDensity.Observe(float64(len(out)) / float64(ctx.n))
	return true
}

// bjoin is one hash-join level's batch program: key expressions over the
// accumulated (left) layout and the right scan's layout. A nil bjoin in
// batchPlan.joins means that level runs the row joinPlan (cross joins).
type bjoin struct {
	lkeys, rkeys []bval
	loffs, roffs []int
	lkinds       []sqlval.Kind
	lpool        sync.Pool
}

func (bj *bjoin) get() *bctx {
	if c, ok := bj.lpool.Get().(*bctx); ok && c != nil {
		c.mismatch = false
		c.rows = c.own[:0]
		return c
	}
	return newBctx(bj.lkinds)
}

func (bj *bjoin) put(c *bctx) { bj.lpool.Put(c) }

// batchPlan is the vectorized twin of a selectPlan, built alongside it
// at compile time. scans and joins parallel the row plan's (already in
// cost order).
type batchPlan struct {
	p     *selectPlan
	scans []*bscan
	joins []*bjoin
}

// run executes the plan batch-at-a-time. The middle return reports
// whether the batch path completed; false (with no error) means a
// runtime column-kind mismatch was detected and the caller should rerun
// in row mode.
func (b *batchPlan) run() (*Result, bool, error) {
	sink := b.p.proj.newSink(0)
	var stats Stats
	var ok bool
	var err error
	if len(b.p.scans) == 1 {
		ok, err = b.runSingle(sink, &stats)
	} else {
		ok, err = b.runMulti(sink, &stats)
	}
	if err != nil || !ok {
		return nil, ok, err
	}
	res, err := sink.finish()
	if err != nil {
		return nil, true, err
	}
	finishStats(res, stats)
	return res, true, nil
}

// scanBatches drives one table scan, staging live rows into ctx and
// invoking flush at every full batch and once at the end. Statistics
// charging matches the row scan exactly (every scanned row, before the
// filter).
func (b *batchPlan) scanBatches(idx int, stats *Stats, ctx *bctx, flush func() (bool, error)) (bool, error) {
	sp := b.p.scans[idx]
	t := sp.table
	sp.acc.record(sp.choice.path.index != nil)
	var ferr error
	okAll := true
	emit := func(id int, row sqlval.Row) bool {
		stats.RowsScanned++
		stats.BytesScanned += int64(t.RowSize(id))
		ctx.rows = append(ctx.rows, row)
		if len(ctx.rows) == batchSize {
			ok, err := flush()
			if err != nil {
				ferr = err
				return false
			}
			if !ok {
				okAll = false
				return false
			}
		}
		return true
	}
	if sp.choice.path.index != nil {
		stats.IndexUsed = true
		for _, id := range sp.ids() {
			row := t.Row(id)
			if row == nil {
				continue
			}
			if !emit(id, row) {
				break
			}
		}
	} else {
		t.Scan(emit)
	}
	if ferr != nil {
		return true, ferr
	}
	if !okAll {
		return false, nil
	}
	return flush()
}

// runSingle streams the one scan's batches straight into the projection
// sink — the batch twin of the fused scan→filter→project pipeline.
func (b *batchPlan) runSingle(sink *projSink, stats *Stats) (bool, error) {
	sp := b.p.scans[0]
	bs := b.scans[0]
	ctx := bs.get()
	defer bs.put(ctx)
	var actual int64
	flush := func() (bool, error) {
		if len(ctx.rows) == 0 {
			return true, nil
		}
		ctx.begin()
		if !bs.applyFilter(ctx) {
			return false, nil
		}
		actual += int64(len(ctx.sel))
		if len(ctx.sel) > 0 {
			ok, err := sink.addBatch(ctx)
			if err != nil || !ok {
				return ok, err
			}
		}
		ctx.reset()
		return true, nil
	}
	ok, err := b.scanBatches(0, stats, ctx, flush)
	if err != nil || !ok {
		return ok, err
	}
	sp.choice.observeEstimate(actual)
	return true, nil
}

// scanFiltered materializes one scan's filtered rows (the batch twin of
// scanPlan.fetch), preserving scan order.
func (b *batchPlan) scanFiltered(idx int, stats *Stats) ([]sqlval.Row, bool, error) {
	sp := b.p.scans[idx]
	bs := b.scans[idx]
	ctx := bs.get()
	defer bs.put(ctx)
	out := make([]sqlval.Row, 0, int(sp.choice.estRows)+8)
	flush := func() (bool, error) {
		if len(ctx.rows) == 0 {
			return true, nil
		}
		ctx.begin()
		if !bs.applyFilter(ctx) {
			return false, nil
		}
		for _, i := range ctx.sel {
			out = append(out, ctx.rows[i])
		}
		ctx.reset()
		return true, nil
	}
	ok, err := b.scanBatches(idx, stats, ctx, flush)
	if err != nil || !ok {
		return nil, ok, err
	}
	sp.choice.observeEstimate(int64(len(out)))
	return out, true, nil
}

// runMulti materializes each scan's filtered rows, hash-joins level by
// level with batched key evaluation, and projects the joined rows in
// windows. Row order matches the row path: left rows in order, build
// chains in right scan order.
func (b *batchPlan) runMulti(sink *projSink, stats *Stats) (bool, error) {
	lrows, ok, err := b.scanFiltered(0, stats)
	if err != nil || !ok {
		return ok, err
	}
	for k, jp := range b.p.joins {
		rrows, rok, err := b.scanFiltered(k+1, stats)
		if err != nil || !rok {
			return rok, err
		}
		if bj := b.joins[k]; bj != nil {
			lrows, ok, err = b.joinBatch(k, jp, lrows, rrows)
			if err != nil || !ok {
				return ok, err
			}
		} else if lrows, err = jp.join(lrows, rrows); err != nil {
			return true, err
		}
	}
	ctx := b.p.proj.getCtx()
	defer b.p.proj.putCtx(ctx)
	for start := 0; start < len(lrows); start += batchSize {
		end := start + batchSize
		if end > len(lrows) {
			end = len(lrows)
		}
		ctx.rows = lrows[start:end]
		ctx.begin()
		ok, err := sink.addBatch(ctx)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

// joinBatch hash-joins one level: key columns are loaded and evaluated a
// batch at a time on both sides, then rows hash and probe through the
// same chain structure as joinPlan.join (NULL keys never match). The
// residual predicate stays row-compiled.
func (b *batchPlan) joinBatch(k int, jp *joinPlan, lrows, rrows []sqlval.Row) ([]sqlval.Row, bool, error) {
	bj := b.joins[k]
	nk := len(bj.rkeys)

	type bentry struct {
		row  sqlval.Row
		keys sqlval.Row
	}
	build := make(map[uint64][]bentry, len(rrows))
	rctx := b.scans[k+1].get()
	defer b.scans[k+1].put(rctx)
	rvecs := make([]*vec, nk)
	for start := 0; start < len(rrows); start += batchSize {
		end := start + batchSize
		if end > len(rrows) {
			end = len(rrows)
		}
		rctx.rows = rrows[start:end]
		rctx.begin()
		if !rctx.loadCols(bj.roffs) {
			return nil, false, nil
		}
		for i := range bj.rkeys {
			rvecs[i] = bj.rkeys[i].eval(rctx)
		}
		for _, i := range rctx.sel {
			keys := make(sqlval.Row, nk)
			var h uint64 = 1469598103934665603
			for kk, kv := range rvecs {
				val := kv.value(i)
				keys[kk] = val
				h = h*1099511628211 ^ val.Hash()
			}
			build[h] = append(build[h], bentry{row: rctx.rows[i], keys: keys})
		}
	}

	lctx := bj.get()
	defer bj.put(lctx)
	lvecs := make([]*vec, nk)
	joined := make([]sqlval.Row, 0, len(lrows))
	for start := 0; start < len(lrows); start += batchSize {
		end := start + batchSize
		if end > len(lrows) {
			end = len(lrows)
		}
		lctx.rows = lrows[start:end]
		lctx.begin()
		if !lctx.loadCols(bj.loffs) {
			return nil, false, nil
		}
		for i := range bj.lkeys {
			lvecs[i] = bj.lkeys[i].eval(lctx)
		}
		for _, i := range lctx.sel {
			var h uint64 = 1469598103934665603
			for _, kv := range lvecs {
				h = h*1099511628211 ^ kv.value(i).Hash()
			}
			for _, cand := range build[h] {
				eq := true
				for kk, kv := range lvecs {
					lv := kv.value(i)
					if lv.IsNull() || cand.keys[kk].IsNull() || !sqlval.Equal(lv, cand.keys[kk]) {
						eq = false
						break
					}
				}
				if !eq {
					continue
				}
				nr := make(sqlval.Row, 0, jp.width)
				nr = append(nr, lctx.rows[i]...)
				nr = append(nr, cand.row...)
				joined = append(joined, nr)
			}
		}
	}

	if jp.residual != nil {
		filtered := joined[:0]
		for _, row := range joined {
			ok, err := jp.residual(row)
			if err != nil {
				return nil, true, err
			}
			if ok {
				filtered = append(filtered, row)
			}
		}
		joined = filtered
	}
	return joined, true, nil
}

// --- batched projection/aggregation ------------------------------------

// batchProj is the vectorized projection tail compiled alongside a
// projPlan: output and ORDER BY expressions for plain selects, group
// keys and aggregate arguments for grouped ones. HAVING and per-group
// output evaluation stay on the row path (once per group, not per row).
type batchProj struct {
	offs  []int
	outs  []bOut // non-grouped output expressions
	order []bOrderSource
	keys  []bOut  // grouped: GROUP BY keys
	args  []*bval // grouped: aggregate argument per call; nil = COUNT(*)
}

// bOut is one projection source: a bare column read straight off the
// joined row (col >= 0), or a compiled vector program. Bare columns —
// the dominant SELECT-list shape — skip the row-to-column transposition
// a vector evaluation would need just to box the values back out.
type bOut struct {
	ev  *bval
	col int
}

// bareCol resolves e to a direct column offset when it is a plain
// reference; returning -1 sends the expression to the vector compiler.
func bareCol(f *frame, e Expr) int {
	if cr, ok := e.(*ColumnRef); ok {
		if off, err := f.resolve(cr); err == nil {
			return off
		}
	}
	return -1
}

// bOrderSource is the batch twin of orderSource: a bare column, a
// compiled key expression, or the output column to reuse for a select
// alias.
type bOrderSource struct {
	ev    *bval
	col   int
	alias int
}

// compileBatchProj builds the batch projection for pp over the execution
// frame f, or nil when any expression is not batch-compilable.
func compileBatchProj(f *frame, pp *projPlan) *batchProj {
	var ns, nps int
	c := newBcomp(f, &ns, &nps)
	bp := &batchProj{}
	if pp.grouped {
		for _, e := range pp.stmt.GroupBy {
			if off := bareCol(f, e); off >= 0 {
				bp.keys = append(bp.keys, bOut{col: off})
				continue
			}
			bv, err := c.compileValue(e)
			if err != nil {
				return nil
			}
			ev := bv
			bp.keys = append(bp.keys, bOut{ev: &ev, col: -1})
		}
		for _, name := range pp.coll.order {
			call := pp.coll.calls[name]
			if call.Star {
				bp.args = append(bp.args, nil)
				continue
			}
			bv, err := c.compileValue(call.Args[0])
			if err != nil {
				return nil
			}
			arg := bv
			bp.args = append(bp.args, &arg)
		}
	} else {
		for _, e := range pp.outAST {
			if off := bareCol(f, e); off >= 0 {
				bp.outs = append(bp.outs, bOut{col: off})
				continue
			}
			bv, err := c.compileValue(e)
			if err != nil {
				return nil
			}
			ev := bv
			bp.outs = append(bp.outs, bOut{ev: &ev, col: -1})
		}
		for i, src := range pp.order {
			if src.eval == nil {
				bp.order = append(bp.order, bOrderSource{alias: src.alias, col: -1})
				continue
			}
			if off := bareCol(f, pp.stmt.OrderBy[i].Expr); off >= 0 {
				bp.order = append(bp.order, bOrderSource{col: off, alias: -1})
				continue
			}
			bv, err := c.compileValue(pp.stmt.OrderBy[i].Expr)
			if err != nil {
				return nil
			}
			ev := bv
			bp.order = append(bp.order, bOrderSource{ev: &ev, col: -1, alias: -1})
		}
	}
	bp.offs = c.offsets()
	return bp
}

func (pp *projPlan) getCtx() *bctx {
	if c, ok := pp.bpPool.Get().(*bctx); ok && c != nil {
		c.mismatch = false
		c.rows = c.own[:0]
		return c
	}
	return newBctx(pp.bpKinds)
}

func (pp *projPlan) putCtx(c *bctx) { pp.bpPool.Put(c) }

// addBatch consumes one filtered batch of input rows. Returns false on a
// column kind mismatch (caller reruns in row mode with a fresh sink).
func (s *projSink) addBatch(ctx *bctx) (bool, error) {
	pp := s.pp
	bp := pp.bp
	if !ctx.loadCols(bp.offs) {
		return false, nil
	}
	sel := ctx.sel

	if pp.grouped {
		if s.kvecs == nil {
			s.kvecs = make([]*vec, len(bp.keys))
			s.gbuf = make([]*group, 0, batchSize)
		}
		for k := range bp.keys {
			if bp.keys[k].ev != nil {
				s.kvecs[k] = bp.keys[k].ev.eval(ctx)
			}
		}
		kval := func(k int, i int32) sqlval.Value {
			if off := bp.keys[k].col; off >= 0 {
				return ctx.rows[i][off]
			}
			return s.kvecs[k].value(i)
		}
		// Assign every selected row to its group (same FNV fold and
		// candidate-chain probe as projSink.add), then accumulate each
		// aggregate over the whole batch with the lane switch hoisted
		// out of the row loop.
		s.gbuf = s.gbuf[:0]
		for _, i := range sel {
			var h uint64 = 14695981039346656037
			for k := range bp.keys {
				h = h*1099511628211 ^ kval(k, i).Hash()
			}
			var g *group
			for _, cand := range s.groups[h] {
				same := true
				for k := range bp.keys {
					if !sqlval.Equal(cand.key[k], kval(k, i)) {
						same = false
						break
					}
				}
				if same {
					g = cand
					break
				}
			}
			if g == nil {
				key := make(sqlval.Row, len(bp.keys))
				for k := range bp.keys {
					key[k] = kval(k, i)
				}
				g = pp.newGroup(key, ctx.rows[i])
				s.groups[h] = append(s.groups[h], g)
				s.ordered = append(s.ordered, g)
			}
			s.gbuf = append(s.gbuf, g)
		}
		for k, arg := range bp.args {
			s.accumVec(k, arg, ctx)
		}
		return true, nil
	}

	if s.ovecs == nil {
		s.ovecs = make([]*vec, len(bp.outs))
		s.okeys = make([]*vec, len(bp.order))
	}
	for e := range bp.outs {
		if bp.outs[e].ev != nil {
			s.ovecs[e] = bp.outs[e].ev.eval(ctx)
		}
	}
	for o := range bp.order {
		if bp.order[o].ev != nil {
			s.okeys[o] = bp.order[o].ev.eval(ctx)
		}
	}
	// One slab per batch backs every output row (and one the order
	// keys): n small per-row allocations collapse into one or two.
	width := len(bp.outs)
	flat := make(sqlval.Row, len(sel)*width)
	var kflat sqlval.Row
	if len(bp.order) > 0 {
		kflat = make(sqlval.Row, len(sel)*len(bp.order))
	}
	for j, i := range sel {
		out := flat[j*width : (j+1)*width : (j+1)*width]
		for e := range bp.outs {
			if off := bp.outs[e].col; off >= 0 {
				out[e] = ctx.rows[i][off]
			} else {
				out[e] = s.ovecs[e].value(i)
			}
		}
		var keys sqlval.Row
		if len(bp.order) > 0 {
			w := len(bp.order)
			keys = kflat[j*w : (j+1)*w : (j+1)*w]
			for o := range bp.order {
				switch {
				case bp.order[o].ev != nil:
					keys[o] = s.okeys[o].value(i)
				case bp.order[o].col >= 0:
					keys[o] = ctx.rows[i][bp.order[o].col]
				default:
					keys[o] = out[bp.order[o].alias]
				}
			}
		}
		s.outs = append(s.outs, sortRow{out: out, keys: keys})
	}
	return true, nil
}

// accumVec folds one aggregate's argument vector into the batch's group
// states. Accumulation order is ascending row order, so float sums are
// bit-identical to the row path; the per-lane update bodies mirror
// aggState.add case by case (including sum += AsFloat on every non-NULL
// input, and isInt clearing for non-INT inputs).
func (s *projSink) accumVec(k int, arg *bval, ctx *bctx) {
	sel := ctx.sel
	if arg == nil { // COUNT(*): every row counts
		for _, g := range s.gbuf {
			g.aggs[k].count++
		}
		return
	}
	v := arg.eval(ctx)
	if v.kind == sqlval.KindNull {
		return // add(NULL) is a no-op for every aggregate
	}
	fn := s.gbuf[0].aggs[k].fn
	switch fn {
	case "COUNT":
		for j, i := range sel {
			if !v.null[i] {
				s.gbuf[j].aggs[k].count++
			}
		}
	case "SUM", "AVG":
		switch v.kind {
		case sqlval.KindInt:
			for j, i := range sel {
				if v.null[i] {
					continue
				}
				st := s.gbuf[j].aggs[k]
				st.seen = true
				st.count++
				st.sumI += v.i[i]
				st.sum += float64(v.i[i])
			}
		case sqlval.KindDate:
			for j, i := range sel {
				if v.null[i] {
					continue
				}
				st := s.gbuf[j].aggs[k]
				st.seen = true
				st.count++
				st.isInt = false
				st.sum += float64(v.i[i])
			}
		case sqlval.KindFloat:
			for j, i := range sel {
				if v.null[i] {
					continue
				}
				st := s.gbuf[j].aggs[k]
				st.seen = true
				st.count++
				st.isInt = false
				st.sum += v.f[i]
			}
		default: // strings: AsFloat is 0, so only the flags advance
			for j, i := range sel {
				if v.null[i] {
					continue
				}
				st := s.gbuf[j].aggs[k]
				st.seen = true
				st.count++
				st.isInt = false
			}
		}
	default: // MIN/MAX keep value-typed comparisons
		for j, i := range sel {
			s.gbuf[j].aggs[k].add(v.value(i))
		}
	}
}
