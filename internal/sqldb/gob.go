package sqldb

import "bestpeer/internal/pnet"

// Register the statement and expression types that cross pnet when the
// TCP transport is active (subqueries, join tasks, results).
func init() {
	pnet.RegisterPayload(
		&SelectStmt{}, &Result{},
		&ColumnRef{}, &Literal{}, &Binary{}, &Unary{}, &FuncCall{}, &Between{}, &InList{},
		Binding{}, TableRef{}, SelectItem{}, OrderItem{},
	)
}
