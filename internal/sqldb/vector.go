package sqldb

import (
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// This file is the data plane of the vectorized executor: typed column
// vectors of up to batchSize rows, three-valued predicate vectors, the
// selection vector carried from scan through filter to projection, and
// the tight per-lane loops comparators and arithmetic compile down to.
//
// Values never box inside a batch: an INT column is a []int64, a
// comparison is one branch-light loop over the selection vector, and
// NULLs ride in a parallel []bool. sqlval.Value appears only at the
// edges — loading a column from stored rows and materializing output
// rows — so the per-row cost of the old closure pipeline (interface
// dispatch, Value construction, kind switches) is paid once per batch
// instead of once per row per operator.

// batchSize is the number of rows processed per batch: big enough to
// amortize per-batch dispatch, small enough that a batch's working set
// (a handful of 8 KiB vectors) stays cache-resident.
const batchSize = 1024

var (
	batchesTotal = telemetry.Default.Counter("sqldb_batches_total")
	batchRows    = telemetry.Default.Counter("sqldb_batch_rows_total")
	// batchSelDensity records the fraction of each batch surviving the
	// filter — the selection-bitmap density.
	batchSelDensity = telemetry.Default.Histogram("sqldb_batch_selectivity",
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1})
	batchFallbacks    = telemetry.Default.Counter("sqldb_batch_fallbacks_total")
	batchPlanCompiles = telemetry.Default.Counter("sqldb_batch_plans_compiled_total")
)

// identSel is the shared all-rows selection vector; scans slice it to
// the batch length. It is never written after init.
var identSel [batchSize]int32

func init() {
	for i := range identSel {
		identSel[i] = int32(i)
	}
}

// vec is one typed column vector. The lane in use depends on kind:
// INT and DATE share the int64 lane, FLOAT the float64 lane, VARCHAR
// the string lane. kind==KindNull marks a statically all-NULL vector
// (no lanes allocated). Entries are only valid at selected positions.
type vec struct {
	kind sqlval.Kind
	i    []int64
	f    []float64
	s    []string
	null []bool
}

// ensure readies the vector for writes at positions < batchSize under
// the given kind, allocating lanes on first use.
func (v *vec) ensure(kind sqlval.Kind) {
	v.kind = kind
	if v.null == nil {
		v.null = make([]bool, batchSize)
	}
	switch kind {
	case sqlval.KindInt, sqlval.KindDate:
		if v.i == nil {
			v.i = make([]int64, batchSize)
		}
	case sqlval.KindFloat:
		if v.f == nil {
			v.f = make([]float64, batchSize)
		}
	case sqlval.KindString:
		if v.s == nil {
			v.s = make([]string, batchSize)
		}
	}
}

// value boxes the element at i back into a sqlval.Value.
func (v *vec) value(i int32) sqlval.Value {
	if v.kind == sqlval.KindNull || v.null[i] {
		return sqlval.Null()
	}
	switch v.kind {
	case sqlval.KindInt:
		return sqlval.Int(v.i[i])
	case sqlval.KindDate:
		return sqlval.Date(v.i[i])
	case sqlval.KindFloat:
		return sqlval.Float(v.f[i])
	default:
		return sqlval.Str(v.s[i])
	}
}

// isNullAt reports NULL-ness handling the all-NULL kind.
func (v *vec) isNullAt(i int32) bool {
	return v.kind == sqlval.KindNull || v.null[i]
}

// constVec broadcasts a constant into a full-length vector once at
// compile time; the result is read-only and shared by every run.
func constVec(val sqlval.Value) *vec {
	v := &vec{}
	if val.IsNull() {
		v.kind = sqlval.KindNull
		return v
	}
	v.ensure(val.Kind())
	for i := 0; i < batchSize; i++ {
		switch val.Kind() {
		case sqlval.KindInt, sqlval.KindDate:
			v.i[i] = val.AsInt()
		case sqlval.KindFloat:
			v.f[i] = val.AsFloat()
		case sqlval.KindString:
			v.s[i] = val.AsString()
		}
	}
	return v
}

// pvec is a three-valued predicate vector: val is meaningful where null
// is false. Consumers collapse NULL to false exactly where the row
// engine's predicate boundary does.
type pvec struct {
	val  []bool
	null []bool
}

func (p *pvec) ensure() {
	if p.val == nil {
		p.val = make([]bool, batchSize)
		p.null = make([]bool, batchSize)
	}
}

// --- comparison primitives ---------------------------------------------
//
// Each loop computes the three-way comparison c and tests it against the
// operator's (lt, eq, gt) mask; masks are fixed at compile time so no
// per-element indirect call happens. Float comparisons go through the
// same three-branch form as sqlval.Compare's cmpFloat so NaN orders
// identically ("not less, not greater" collapses to equal).

func opMasks(op string) (lt, eq, gt, ok bool) {
	switch op {
	case "=":
		return false, true, false, true
	case "<>":
		return true, false, true, true
	case "<":
		return true, false, false, true
	case "<=":
		return true, true, false, true
	case ">":
		return false, false, true, true
	case ">=":
		return false, true, true, true
	default:
		return false, false, false, false
	}
}

func cmpIntVV(l, r *vec, out *pvec, sel []int32, lt, eq, gt bool) {
	for _, i := range sel {
		if l.null[i] || r.null[i] {
			out.null[i], out.val[i] = true, false
			continue
		}
		out.null[i] = false
		a, b := l.i[i], r.i[i]
		out.val[i] = (a < b && lt) || (a == b && eq) || (a > b && gt)
	}
}

func cmpFloatVV(l, r *vec, out *pvec, sel []int32, lt, eq, gt bool) {
	for _, i := range sel {
		if l.null[i] || r.null[i] {
			out.null[i], out.val[i] = true, false
			continue
		}
		out.null[i] = false
		a, b := l.f[i], r.f[i]
		switch {
		case a < b:
			out.val[i] = lt
		case a > b:
			out.val[i] = gt
		default:
			out.val[i] = eq
		}
	}
}

func cmpStrVV(l, r *vec, out *pvec, sel []int32, lt, eq, gt bool) {
	for _, i := range sel {
		if l.null[i] || r.null[i] {
			out.null[i], out.val[i] = true, false
			continue
		}
		out.null[i] = false
		a, b := l.s[i], r.s[i]
		out.val[i] = (a < b && lt) || (a == b && eq) || (a > b && gt)
	}
}

// cmpConstResult fills the outcome of comparisons whose non-NULL result
// is a compile-time constant (mismatched kinds ordering by kind tag).
func cmpConstResult(l, r *vec, out *pvec, sel []int32, res bool) {
	for _, i := range sel {
		if l.isNullAt(i) || r.isNullAt(i) {
			out.null[i], out.val[i] = true, false
			continue
		}
		out.null[i], out.val[i] = false, res
	}
}

// toFloat widens an int-lane vector into the destination's float lane
// (the compile-time twin of AsFloat for mixed-kind comparisons).
func toFloat(src, dst *vec, sel []int32) {
	for _, i := range sel {
		dst.null[i] = src.null[i]
		dst.f[i] = float64(src.i[i])
	}
}

// --- arithmetic primitives ---------------------------------------------

func addIntVV(l, r, out *vec, sel []int32) {
	for _, i := range sel {
		out.null[i] = l.null[i] || r.null[i]
		out.i[i] = l.i[i] + r.i[i]
	}
}

func subIntVV(l, r, out *vec, sel []int32) {
	for _, i := range sel {
		out.null[i] = l.null[i] || r.null[i]
		out.i[i] = l.i[i] - r.i[i]
	}
}

func mulIntVV(l, r, out *vec, sel []int32) {
	for _, i := range sel {
		out.null[i] = l.null[i] || r.null[i]
		out.i[i] = l.i[i] * r.i[i]
	}
}

func addFloatVV(l, r, out *vec, sel []int32) {
	for _, i := range sel {
		out.null[i] = l.null[i] || r.null[i]
		out.f[i] = l.f[i] + r.f[i]
	}
}

func subFloatVV(l, r, out *vec, sel []int32) {
	for _, i := range sel {
		out.null[i] = l.null[i] || r.null[i]
		out.f[i] = l.f[i] - r.f[i]
	}
}

func mulFloatVV(l, r, out *vec, sel []int32) {
	for _, i := range sel {
		out.null[i] = l.null[i] || r.null[i]
		out.f[i] = l.f[i] * r.f[i]
	}
}

// divFloatVV mirrors sqlval.Div: always a float, NULL on zero divisor.
func divFloatVV(l, r, out *vec, sel []int32) {
	for _, i := range sel {
		if l.null[i] || r.null[i] || r.f[i] == 0 {
			out.null[i] = true
			continue
		}
		out.null[i] = false
		out.f[i] = l.f[i] / r.f[i]
	}
}

// --- boolean primitives ------------------------------------------------

// andPred collapses each operand's NULL to false (the row engine's
// predicate boundary does exactly this on AND/OR children) and ANDs.
// The output carries no NULLs. Operands are read before the output is
// written so out may alias a (the filter fold accumulates in place).
func andPred(a, b, out *pvec, sel []int32) {
	for _, i := range sel {
		av := a.val[i] && !a.null[i]
		bv := b.val[i] && !b.null[i]
		out.val[i], out.null[i] = av && bv, false
	}
}

func orPred(a, b, out *pvec, sel []int32) {
	for _, i := range sel {
		av := a.val[i] && !a.null[i]
		bv := b.val[i] && !b.null[i]
		out.val[i], out.null[i] = av || bv, false
	}
}

// rawAndPred ANDs without collapsing: the output is NULL when either
// operand is NULL (BETWEEN's value semantics — any NULL bound or
// subject yields NULL, not false).
func rawAndPred(a, b, out *pvec, sel []int32) {
	for _, i := range sel {
		av, an := a.val[i], a.null[i]
		bv, bn := b.val[i], b.null[i]
		out.val[i], out.null[i] = av && bv && !an && !bn, an || bn
	}
}

// notPred negates where known; NULL stays NULL (value-semantics NOT).
func notPred(a, out *pvec, sel []int32) {
	for _, i := range sel {
		av, an := a.val[i], a.null[i]
		out.val[i], out.null[i] = !av && !an, an
	}
}

// orMatched accumulates IN-list membership: a definite match from one
// item comparison sets the accumulator; NULL comparisons (NULL list
// items) are skipped, exactly as the row loop skips them.
func orMatched(acc, c *pvec, sel []int32) {
	for _, i := range sel {
		if c.val[i] && !c.null[i] {
			acc.val[i] = true
		}
	}
}

// inListFinish produces the IN result from the match accumulator: NULL
// subject yields NULL; otherwise matched != not.
func inListFinish(subject *vec, acc, out *pvec, sel []int32, not bool) {
	for _, i := range sel {
		if subject.isNullAt(i) {
			out.null[i], out.val[i] = true, false
			continue
		}
		out.null[i], out.val[i] = false, acc.val[i] != not
	}
}

// truthyPred converts a value vector to a predicate, keeping NULLs:
// numerics test non-zero, strings and dates are true (mirrors truthy).
func truthyPred(v *vec, out *pvec, sel []int32) {
	switch v.kind {
	case sqlval.KindNull:
		for _, i := range sel {
			out.null[i], out.val[i] = true, false
		}
	case sqlval.KindInt, sqlval.KindDate:
		if v.kind == sqlval.KindDate {
			// Dates are truthy whenever non-NULL.
			for _, i := range sel {
				out.null[i] = v.null[i]
				out.val[i] = !v.null[i]
			}
			return
		}
		for _, i := range sel {
			out.null[i] = v.null[i]
			out.val[i] = !v.null[i] && v.i[i] != 0
		}
	case sqlval.KindFloat:
		for _, i := range sel {
			out.null[i] = v.null[i]
			out.val[i] = !v.null[i] && v.f[i] != 0
		}
	default: // strings: truthy whenever non-NULL
		for _, i := range sel {
			out.null[i] = v.null[i]
			out.val[i] = !v.null[i]
		}
	}
}

// predToVec boxes a predicate back into an INT 0/1 vector, keeping
// NULLs (a comparison in value position yields NULL on NULL operands).
func predToVec(p *pvec, out *vec, sel []int32) {
	for _, i := range sel {
		out.null[i] = p.null[i]
		if p.val[i] {
			out.i[i] = 1
		} else {
			out.i[i] = 0
		}
	}
}

// isNullPred implements IS [NOT] NULL; the output is never NULL.
func isNullPred(v *vec, out *pvec, sel []int32, not bool) {
	for _, i := range sel {
		out.null[i] = false
		out.val[i] = v.isNullAt(i) != not
	}
}
