package sqldb

import (
	"fmt"
	"testing"

	"bestpeer/internal/sqlval"
)

// testDB builds a small two-table database used across executor tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_totalprice FLOAT, o_orderdate DATE)`)
	mustExec(t, db, `CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_quantity INT, l_extendedprice FLOAT, l_shipdate DATE)`)
	mustExec(t, db, `CREATE INDEX idx_li_ship ON lineitem (l_shipdate)`)
	mustExec(t, db, `CREATE INDEX idx_li_ok ON lineitem (l_orderkey)`)
	for i := 1; i <= 20; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO orders VALUES (%d, %d, %f, DATE '1998-01-%02d')`,
			i, i%5, float64(i)*100, i%28+1))
		for j := 0; j < 3; j++ {
			mustExec(t, db, fmt.Sprintf(
				`INSERT INTO lineitem VALUES (%d, %d, %d, %f, DATE '1998-%02d-15')`,
				i, i*10+j, j+1, float64(j+1)*10, j+1))
		}
	}
	return db
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestSelectProjectionAndFilter(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1500`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Columns[0] != "o_orderkey" || res.Columns[1] != "o_totalprice" {
		t.Errorf("columns = %v", res.Columns)
	}
	for _, r := range res.Rows {
		if r[1].AsFloat() <= 1500 {
			t.Errorf("filter leaked row %v", r)
		}
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT * FROM orders WHERE o_orderkey = 1`)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("star result = %+v", res.Rows)
	}
	if len(res.Columns) != 4 || res.Columns[0] != "o_orderkey" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectUsesPrimaryIndex(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT * FROM orders WHERE o_orderkey = 7`)
	if !res.Stats.IndexUsed {
		t.Error("primary index not used for equality")
	}
	if res.Stats.RowsScanned != 1 {
		t.Errorf("rows scanned = %d, want 1", res.Stats.RowsScanned)
	}
}

func TestSelectUsesSecondaryIndexRange(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT * FROM lineitem WHERE l_shipdate > DATE '1998-02-20'`)
	if !res.Stats.IndexUsed {
		t.Error("secondary index not used for range")
	}
	// Only March rows qualify: 20 orders x 1 lineitem.
	if len(res.Rows) != 20 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.Stats.RowsScanned != 20 {
		t.Errorf("rows scanned = %d, want 20 (index range)", res.Stats.RowsScanned)
	}
}

func TestSelectFullScanWhenNoIndex(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT * FROM lineitem WHERE l_quantity = 2`)
	if res.Stats.IndexUsed {
		t.Error("claimed index on unindexed column")
	}
	if res.Stats.RowsScanned != 60 {
		t.Errorf("rows scanned = %d, want 60 (full scan)", res.Stats.RowsScanned)
	}
	if len(res.Rows) != 20 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestSelectBetweenUsesIndex(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT * FROM lineitem WHERE l_shipdate BETWEEN DATE '1998-02-01' AND DATE '1998-02-28'`)
	if !res.Stats.IndexUsed {
		t.Error("BETWEEN did not use index")
	}
	if len(res.Rows) != 20 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestSelectFlippedComparison(t *testing.T) {
	db := testDB(t)
	// literal OP column must work and use the index.
	res := mustExec(t, db, `SELECT * FROM lineitem WHERE DATE '1998-02-20' < l_shipdate`)
	if len(res.Rows) != 20 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if !res.Stats.IndexUsed {
		t.Error("flipped comparison did not use index")
	}
}

func TestHashJoin(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT o.o_orderkey, l.l_partkey FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE o.o_totalprice > 1800`)
	// Orders 19, 20 qualify; each joins 3 lineitems.
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE customer (c_custkey INT PRIMARY KEY, c_name VARCHAR(20))`)
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO customer VALUES (%d, 'cust%d')`, i, i))
	}
	res := mustExec(t, db, `SELECT c.c_name, COUNT(*) AS n FROM customer c, orders o, lineitem l
		WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey GROUP BY c.c_name ORDER BY c.c_name`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	total := int64(0)
	for _, r := range res.Rows {
		total += r[1].AsInt()
	}
	if total != 60 {
		t.Errorf("total join cardinality = %d, want 60", total)
	}
}

func TestCartesianProductWithoutKeys(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE a (x INT)`)
	mustExec(t, db, `CREATE TABLE b (y INT)`)
	mustExec(t, db, `INSERT INTO a VALUES (1), (2)`)
	mustExec(t, db, `INSERT INTO b VALUES (10), (20), (30)`)
	res := mustExec(t, db, `SELECT x, y FROM a, b`)
	if len(res.Rows) != 6 {
		t.Errorf("cartesian rows = %d", len(res.Rows))
	}
}

func TestGlobalAggregates(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(l_extendedprice), AVG(l_quantity), MIN(l_quantity), MAX(l_quantity) FROM lineitem`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].AsInt() != 60 {
		t.Errorf("count = %v", r[0])
	}
	if r[1].AsFloat() != 20*60.0 {
		t.Errorf("sum = %v", r[1])
	}
	if r[2].AsFloat() != 2 {
		t.Errorf("avg = %v", r[2])
	}
	if r[3].AsInt() != 1 || r[4].AsInt() != 3 {
		t.Errorf("min/max = %v/%v", r[3], r[4])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(l_quantity) FROM lineitem WHERE l_quantity > 100`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 0 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("sum over empty = %v, want NULL", res.Rows[0][1])
	}
}

func TestGroupByWithHaving(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey HAVING COUNT(*) >= 4 ORDER BY o_custkey`)
	// 20 orders over 5 custkeys -> 4 each; all pass HAVING.
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].AsInt() != 4 {
			t.Errorf("group %v count = %v", r[0], r[1])
		}
	}
	res2 := mustExec(t, db, `SELECT o_custkey FROM orders GROUP BY o_custkey HAVING COUNT(*) > 4`)
	if len(res2.Rows) != 0 {
		t.Errorf("having leak: %d rows", len(res2.Rows))
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT SUM(l_extendedprice * (1 + 0)) AS rev FROM lineitem GROUP BY l_quantity ORDER BY rev DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsFloat() < res.Rows[2][0].AsFloat() {
		t.Error("ORDER BY DESC on alias not applied")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT o_custkey, o_orderkey FROM orders ORDER BY o_custkey ASC, o_orderkey DESC`)
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0].AsInt() > b[0].AsInt() {
			t.Fatal("primary key order violated")
		}
		if a[0].AsInt() == b[0].AsInt() && a[1].AsInt() < b[1].AsInt() {
			t.Fatal("secondary DESC order violated")
		}
	}
}

func TestLimit(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 3`)
	if len(res.Rows) != 3 || res.Rows[0][0].AsInt() != 1 {
		t.Errorf("limit rows = %+v", res.Rows)
	}
	res = mustExec(t, db, `SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Errorf("grouped limit rows = %d", len(res.Rows))
	}
}

func TestStringDateCoercionInPredicate(t *testing.T) {
	db := testDB(t)
	a := mustExec(t, db, `SELECT COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1998-02-20'`)
	b := mustExec(t, db, `SELECT COUNT(*) FROM lineitem WHERE l_shipdate > '1998-02-20'`)
	if a.Rows[0][0].AsInt() != b.Rows[0][0].AsInt() {
		t.Errorf("string date compare mismatch: %v vs %v", a.Rows[0][0], b.Rows[0][0])
	}
}

func TestInListPredicate(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT COUNT(*) FROM orders WHERE o_custkey IN (1, 2)`)
	if res.Rows[0][0].AsInt() != 8 {
		t.Errorf("IN count = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM orders WHERE o_custkey NOT IN (1, 2)`)
	if res.Rows[0][0].AsInt() != 12 {
		t.Errorf("NOT IN count = %v", res.Rows[0][0])
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, NULL), (NULL, 30)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM t WHERE b > 5`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("NULL comparison leaked: %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT COUNT(a), COUNT(*) FROM t`)
	if res.Rows[0][0].AsInt() != 2 || res.Rows[0][1].AsInt() != 3 {
		t.Errorf("COUNT null handling = %v", res.Rows[0])
	}
	res = mustExec(t, db, `SELECT SUM(b) FROM t`)
	if res.Rows[0][0].AsInt() != 40 {
		t.Errorf("SUM skips NULL = %v", res.Rows[0][0])
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `DELETE FROM orders WHERE o_orderkey <= 5`)
	if res.Stats.RowsReturned != 5 {
		t.Errorf("deleted = %d", res.Stats.RowsReturned)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM orders`)
	if res.Rows[0][0].AsInt() != 15 {
		t.Errorf("remaining = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `UPDATE orders SET o_totalprice = o_totalprice * 2 WHERE o_orderkey = 10`)
	if res.Stats.RowsReturned != 1 {
		t.Errorf("updated = %d", res.Stats.RowsReturned)
	}
	res = mustExec(t, db, `SELECT o_totalprice FROM orders WHERE o_orderkey = 10`)
	if res.Rows[0][0].AsFloat() != 2000 {
		t.Errorf("price after update = %v", res.Rows[0][0])
	}
}

func TestUniqueConstraintViolation(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`INSERT INTO orders VALUES (1, 1, 1.0, DATE '1998-01-01')`); err == nil {
		t.Error("duplicate primary key accepted")
	}
}

func TestErrorsOnBadQueries(t *testing.T) {
	db := testDB(t)
	bad := []string{
		`SELECT nope FROM orders`,
		`SELECT * FROM nonexistent`,
		`SELECT o_orderkey FROM orders, lineitem WHERE zzz = 1`,
		`SELECT o.o_orderkey FROM orders x`,
		`INSERT INTO orders VALUES (1, 2)`,
		`UPDATE orders SET nope = 1`,
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE a (x INT)`)
	mustExec(t, db, `CREATE TABLE b (x INT)`)
	mustExec(t, db, `INSERT INTO a VALUES (1)`)
	mustExec(t, db, `INSERT INTO b VALUES (1)`)
	if _, err := db.Exec(`SELECT x FROM a, b`); err == nil {
		t.Error("ambiguous column accepted")
	}
	if _, err := db.Exec(`SELECT a.x FROM a, b`); err != nil {
		t.Errorf("qualified column rejected: %v", err)
	}
}

func TestConcurrentReads(t *testing.T) {
	db := testDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := db.Query(`SELECT COUNT(*) FROM lineitem WHERE l_quantity = 2`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableAPIScanAndBytes(t *testing.T) {
	db := testDB(t)
	tbl := db.Table("orders")
	if tbl == nil {
		t.Fatal("Table lookup failed")
	}
	if tbl.NumRows() != 20 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
	if tbl.DataBytes() <= 0 {
		t.Error("DataBytes not tracked")
	}
	n := 0
	tbl.Scan(func(_ int, _ sqlval.Row) bool { n++; return true })
	if n != 20 {
		t.Errorf("scan visited %d", n)
	}
}

func TestIndexMinMax(t *testing.T) {
	db := testDB(t)
	idx := db.Table("lineitem").IndexOn("l_shipdate")
	if idx == nil {
		t.Fatal("no index on l_shipdate")
	}
	lo, hi, ok := idx.MinMax()
	if !ok {
		t.Fatal("MinMax not ok")
	}
	if lo.String() != "1998-01-15" || hi.String() != "1998-03-15" {
		t.Errorf("minmax = %s..%s", lo, hi)
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	if !db.DropTable("orders") {
		t.Error("DropTable returned false")
	}
	if db.DropTable("orders") {
		t.Error("double drop returned true")
	}
	if _, err := db.Query(`SELECT * FROM orders`); err == nil {
		t.Error("query against dropped table succeeded")
	}
}

func TestTableNamesSorted(t *testing.T) {
	db := testDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "lineitem" || names[1] != "orders" {
		t.Errorf("names = %v", names)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := testDB(t)
	all := mustExec(t, db, `SELECT o_custkey FROM orders`)
	if len(all.Rows) != 20 {
		t.Fatalf("rows = %d", len(all.Rows))
	}
	res := mustExec(t, db, `SELECT DISTINCT o_custkey FROM orders ORDER BY o_custkey`)
	if len(res.Rows) != 5 {
		t.Fatalf("distinct rows = %d, want 5", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0].AsInt() <= res.Rows[i-1][0].AsInt() {
			t.Fatal("distinct output not strictly increasing")
		}
	}
	// DISTINCT with LIMIT: dedupe happens before the limit.
	res = mustExec(t, db, `SELECT DISTINCT o_custkey FROM orders ORDER BY o_custkey LIMIT 3`)
	if len(res.Rows) != 3 || res.Rows[2][0].AsInt() != 2 {
		t.Fatalf("distinct+limit = %+v", res.Rows)
	}
	// Multi-column distinct keeps distinct pairs.
	res = mustExec(t, db, `SELECT DISTINCT l_quantity, l_extendedprice FROM lineitem`)
	if len(res.Rows) != 3 {
		t.Fatalf("pair-distinct rows = %d", len(res.Rows))
	}
	// DISTINCT over a grouped query deduplicates the output rows.
	res = mustExec(t, db, `SELECT DISTINCT COUNT(*) FROM orders GROUP BY o_custkey`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("distinct grouped = %+v", res.Rows)
	}
}

func TestIsNullPredicate(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT, b VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL), (NULL, NULL)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM t WHERE a IS NULL`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("IS NULL count = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM t WHERE a IS NOT NULL AND b IS NULL`)
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("combined null predicate = %v", res.Rows[0][0])
	}
	// NOT (a IS NULL) is the same as a IS NOT NULL.
	res = mustExec(t, db, `SELECT COUNT(*) FROM t WHERE NOT a IS NULL`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("NOT IS NULL = %v", res.Rows[0][0])
	}
	// Rendering round-trips.
	stmt, err := ParseSelect(`SELECT a FROM t WHERE (a IS NULL) AND (b IS NOT NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSelect("SELECT a FROM t WHERE " + stmt.Where.String()); err != nil {
		t.Errorf("IS NULL rendering does not reparse: %v", err)
	}
	if _, err := db.Exec(`SELECT a FROM t WHERE a IS 5`); err == nil {
		t.Error("IS without NULL accepted")
	}
}
