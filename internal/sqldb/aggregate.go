package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"bestpeer/internal/sqlval"
)

// aggState accumulates one aggregate function over a group.
type aggState struct {
	fn    string
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   sqlval.Value
	max   sqlval.Value
	seen  bool
}

func newAggState(fn string) *aggState {
	return &aggState{fn: fn, isInt: true}
}

func (a *aggState) add(v sqlval.Value) {
	if a.fn == "COUNT" {
		// COUNT(expr) counts non-NULL; COUNT(*) feeds a non-null marker.
		if !v.IsNull() {
			a.count++
		}
		return
	}
	if v.IsNull() {
		return
	}
	a.seen = true
	a.count++
	switch a.fn {
	case "SUM", "AVG":
		if v.Kind() == sqlval.KindInt {
			a.sumI += v.AsInt()
		} else {
			a.isInt = false
		}
		a.sum += v.AsFloat()
	case "MIN":
		if a.min.IsNull() || sqlval.Less(v, a.min) {
			a.min = v
		}
	case "MAX":
		if a.max.IsNull() || sqlval.Less(a.max, v) {
			a.max = v
		}
	}
}

// merge folds another partial state into a; the engines use it to
// combine per-peer partial aggregates at the query submitting peer.
func (a *aggState) merge(o *aggState) {
	a.count += o.count
	a.sum += o.sum
	a.sumI += o.sumI
	a.isInt = a.isInt && o.isInt
	a.seen = a.seen || o.seen
	if !o.min.IsNull() && (a.min.IsNull() || sqlval.Less(o.min, a.min)) {
		a.min = o.min
	}
	if !o.max.IsNull() && (a.max.IsNull() || sqlval.Less(a.max, o.max)) {
		a.max = o.max
	}
}

func (a *aggState) result() sqlval.Value {
	switch a.fn {
	case "COUNT":
		return sqlval.Int(a.count)
	case "SUM":
		if !a.seen {
			return sqlval.Null()
		}
		if a.isInt {
			return sqlval.Int(a.sumI)
		}
		return sqlval.Float(a.sum)
	case "AVG":
		if !a.seen {
			return sqlval.Null()
		}
		return sqlval.Float(a.sum / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	default:
		return sqlval.Null()
	}
}

// aggCollector finds the distinct aggregate calls appearing anywhere in
// the SELECT list, HAVING, and ORDER BY, keyed by their SQL rendering.
type aggCollector struct {
	order []string
	calls map[string]*FuncCall
}

func collectAggregates(stmt *SelectStmt) *aggCollector {
	c := &aggCollector{calls: make(map[string]*FuncCall)}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *FuncCall:
			if isAggregateName(x.Name) {
				key := x.String()
				if _, ok := c.calls[key]; !ok {
					c.calls[key] = x
					c.order = append(c.order, key)
				}
				return // aggregates do not nest
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.E)
		case *Between:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *InList:
			walk(x.E)
			for _, v := range x.List {
				walk(v)
			}
		case *IsNull:
			walk(x.E)
		}
	}
	for _, item := range stmt.Items {
		if !item.Star {
			walk(item.Expr)
		}
	}
	walk(stmt.Having)
	for _, o := range stmt.OrderBy {
		walk(o.Expr)
	}
	return c
}

// group holds the accumulation state for one GROUP BY bucket.
type group struct {
	key    sqlval.Row
	sample sqlval.Row // first input row; evaluates non-aggregate refs
	aggs   []*aggState
}

// projectGrouped executes grouping, aggregation, HAVING, ORDER BY and
// projection for aggregate queries. starF expands stars in FROM order.
func projectGrouped(f, starF *frame, stmt *SelectStmt, rows []sqlval.Row) (*Result, error) {
	coll := collectAggregates(stmt)
	groups := make(map[uint64][]*group)
	var orderedGroups []*group

	newGroup := func(key, sample sqlval.Row) *group {
		g := &group{key: key, sample: sample}
		for _, name := range coll.order {
			g.aggs = append(g.aggs, newAggState(coll.calls[name].Name))
		}
		return g
	}

	for _, row := range rows {
		key := make(sqlval.Row, len(stmt.GroupBy))
		for i, e := range stmt.GroupBy {
			v, err := evalExpr(f, e, row)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		var h uint64 = 14695981039346656037
		for _, v := range key {
			h = h*1099511628211 ^ v.Hash()
		}
		var g *group
		for _, cand := range groups[h] {
			same := true
			for i := range key {
				if !sqlval.Equal(cand.key[i], key[i]) {
					same = false
					break
				}
			}
			if same {
				g = cand
				break
			}
		}
		if g == nil {
			g = newGroup(key, row)
			groups[h] = append(groups[h], g)
			orderedGroups = append(orderedGroups, g)
		}
		for i, name := range coll.order {
			call := coll.calls[name]
			if call.Star {
				g.aggs[i].add(sqlval.Int(1))
				continue
			}
			v, err := evalExpr(f, call.Args[0], row)
			if err != nil {
				return nil, err
			}
			g.aggs[i].add(v)
		}
	}

	// A global aggregate (no GROUP BY) over zero rows still yields one row.
	if len(stmt.GroupBy) == 0 && len(orderedGroups) == 0 {
		orderedGroups = append(orderedGroups, newGroup(nil, nil))
	}

	cols, exprs, err := expandItems(starF, stmt.Items)
	if err != nil {
		return nil, err
	}

	evalAgg := func(g *group, e Expr) (sqlval.Value, error) {
		return evalWithAggs(f, e, g, coll)
	}

	res := &Result{Columns: cols}
	type sorted struct {
		out  sqlval.Row
		keys sqlval.Row
	}
	var outs []sorted
	for _, g := range orderedGroups {
		if stmt.Having != nil {
			v, err := evalAgg(g, stmt.Having)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				continue
			}
		}
		out := make(sqlval.Row, len(exprs))
		for i, e := range exprs {
			v, err := evalAgg(g, e)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		var keys sqlval.Row
		for _, o := range stmt.OrderBy {
			v, err := evalAgg(g, o.Expr)
			if err != nil {
				v2, err2 := orderByAlias(o.Expr, cols, out)
				if err2 != nil {
					return nil, err
				}
				v = v2
			}
			keys = append(keys, v)
		}
		outs = append(outs, sorted{out: out, keys: keys})
	}
	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			return lessKeys(outs[i].keys, outs[j].keys, stmt.OrderBy)
		})
	}
	seen := newDistinctFilter(stmt.Distinct)
	for _, s := range outs {
		if !seen.admit(s.out) {
			continue
		}
		if stmt.Limit >= 0 && len(res.Rows) >= stmt.Limit {
			break
		}
		res.Rows = append(res.Rows, s.out)
	}
	return res, nil
}

// evalWithAggs evaluates an expression in aggregate context: aggregate
// calls read their computed state; other column references evaluate
// against the group's sample row (MySQL-permissive semantics).
func evalWithAggs(f *frame, e Expr, g *group, coll *aggCollector) (sqlval.Value, error) {
	switch x := e.(type) {
	case *FuncCall:
		if isAggregateName(x.Name) {
			key := x.String()
			for i, name := range coll.order {
				if name == key {
					return g.aggs[i].result(), nil
				}
			}
			return sqlval.Null(), fmt.Errorf("sqldb: uncollected aggregate %s", key)
		}
		return sqlval.Null(), fmt.Errorf("sqldb: unknown function %s", x.Name)
	case *Binary:
		if strings.EqualFold(x.Op, "AND") || strings.EqualFold(x.Op, "OR") {
			lv, err := evalWithAggs(f, x.L, g, coll)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := evalWithAggs(f, x.R, g, coll)
			if err != nil {
				return sqlval.Null(), err
			}
			lb, rb := !lv.IsNull() && truthy(lv), !rv.IsNull() && truthy(rv)
			if strings.EqualFold(x.Op, "AND") {
				return boolVal(lb && rb), nil
			}
			return boolVal(lb || rb), nil
		}
		lv, err := evalWithAggs(f, x.L, g, coll)
		if err != nil {
			return sqlval.Null(), err
		}
		rv, err := evalWithAggs(f, x.R, g, coll)
		if err != nil {
			return sqlval.Null(), err
		}
		switch x.Op {
		case "+":
			return sqlval.Add(lv, rv), nil
		case "-":
			return sqlval.Sub(lv, rv), nil
		case "*":
			return sqlval.Mul(lv, rv), nil
		case "/":
			return sqlval.Div(lv, rv), nil
		default:
			if lv.IsNull() || rv.IsNull() {
				return sqlval.Null(), nil
			}
			return boolVal(compareCoerced(lv, rv, x.Op)), nil
		}
	case *Unary:
		v, err := evalWithAggs(f, x.E, g, coll)
		if err != nil {
			return sqlval.Null(), err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return sqlval.Null(), nil
			}
			return boolVal(!truthy(v)), nil
		}
		return sqlval.Sub(sqlval.Int(0), v), nil
	default:
		if g.sample == nil {
			if _, ok := e.(*Literal); ok {
				return evalExpr(f, e, nil)
			}
			return sqlval.Null(), nil
		}
		return evalExpr(f, e, g.sample)
	}
}
