package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

// TestPlanCacheHitsAndCounters verifies the repeat-statement hot path:
// the second execution of the same SQL text hits the cache and skips
// parse and compile.
func TestPlanCacheHitsAndCounters(t *testing.T) {
	if !CompileEnabled() {
		t.Skip("compiled layer disabled")
	}
	db := testDB(t)
	sql := `SELECT o_orderkey FROM orders WHERE o_totalprice > 500`
	hits0, misses0 := planCacheHits.Value(), planCacheMisses.Value()
	first := mustExec(t, db, sql)
	if got := planCacheMisses.Value() - misses0; got != 1 {
		t.Fatalf("cold statement: misses = %d, want 1", got)
	}
	second := mustExec(t, db, sql)
	if got := planCacheHits.Value() - hits0; got != 1 {
		t.Fatalf("repeat statement: hits = %d, want 1", got)
	}
	if rowsKey(first) != rowsKey(second) || first.Stats != second.Stats {
		t.Fatal("cached plan returned a different result")
	}
}

// TestPlanCacheInvalidatedByCreateIndex is the stale-plan regression
// test: a plan compiled with a full scan must be recompiled — not
// replayed — after CREATE INDEX changes the access-path choice.
func TestPlanCacheInvalidatedByCreateIndex(t *testing.T) {
	if !CompileEnabled() {
		t.Skip("compiled layer disabled")
	}
	db := testDB(t)
	sql := `SELECT o_custkey FROM orders WHERE o_custkey = 3`
	before := mustExec(t, db, sql)
	if before.Stats.IndexUsed {
		t.Fatal("no index on o_custkey yet; expected a full scan")
	}
	mustExec(t, db, sql) // ensure the full-scan plan is cached and warm
	inval0 := planCacheInvalidated.Value()
	mustExec(t, db, `CREATE INDEX idx_cust ON orders (o_custkey)`)
	if planCacheInvalidated.Value() == inval0 {
		t.Fatal("CREATE INDEX did not invalidate the plan cache")
	}
	after := mustExec(t, db, sql)
	if !after.Stats.IndexUsed {
		t.Fatal("stale plan: same SQL still full-scans after CREATE INDEX")
	}
	if rowsKey(before) != rowsKey(after) {
		t.Fatal("rows changed across recompilation")
	}
}

// TestPlanCacheInvalidatedByTableDDL re-creates a table with a wider
// schema under the same name: the cached star-select must notice.
func TestPlanCacheInvalidatedByTableDDL(t *testing.T) {
	if !CompileEnabled() {
		t.Skip("compiled layer disabled")
	}
	db := NewDB()
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	sql := `SELECT * FROM t`
	res := mustExec(t, db, sql)
	mustExec(t, db, sql)
	if len(res.Columns) != 1 {
		t.Fatalf("columns = %v", res.Columns)
	}
	if !db.DropTable("t") {
		t.Fatal("drop failed")
	}
	mustExec(t, db, `CREATE TABLE t (a INT, b INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (2, 3)`)
	res = mustExec(t, db, sql)
	if len(res.Columns) != 2 || len(res.Rows) != 1 || len(res.Rows[0]) != 2 {
		t.Fatalf("stale plan survived DROP+CREATE: columns %v rows %v", res.Columns, res.Rows)
	}
}

// TestPlanCacheScopedInvalidation verifies table-scoped invalidation:
// DDL against one table (DROP TABLE, CREATE INDEX) must drop only the
// cached plans referencing it — survivors keep hitting — and the event
// counters must distinguish scoped from full invalidations.
func TestPlanCacheScopedInvalidation(t *testing.T) {
	if !CompileEnabled() {
		t.Skip("compiled layer disabled")
	}
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE scratch (x INT)`)
	mustExec(t, db, `INSERT INTO scratch VALUES (1)`)
	ordersSQL := `SELECT o_orderkey FROM orders WHERE o_totalprice > 500`
	scratchSQL := `SELECT x FROM scratch`
	// Warm both: scratch's first stats build bumps the global statsVer
	// (staling the orders entry), so run orders again afterwards to
	// cache it under the settled statsVer.
	mustExec(t, db, ordersSQL)
	mustExec(t, db, scratchSQL)
	mustExec(t, db, ordersSQL)

	hits0 := planCacheHits.Value()
	full0, scoped0 := planCacheInvalFull.Value(), planCacheInvalScoped.Value()

	// DROP TABLE scratch: scoped — the orders plan survives and hits.
	if !db.DropTable("scratch") {
		t.Fatal("drop failed")
	}
	if got := planCacheInvalScoped.Value() - scoped0; got != 1 {
		t.Fatalf("scoped invalidation events = %d, want 1", got)
	}
	if got := planCacheInvalFull.Value() - full0; got != 0 {
		t.Fatalf("full invalidation events = %d, want 0", got)
	}
	mustExec(t, db, ordersSQL)
	if got := planCacheHits.Value() - hits0; got != 1 {
		t.Fatalf("orders plan did not survive scoped DROP TABLE (hits delta %d)", got)
	}

	// CREATE INDEX on lineitem: scoped again; orders still survives.
	mustExec(t, db, `CREATE INDEX idx_li ON lineitem (l_orderkey)`)
	if got := planCacheInvalScoped.Value() - scoped0; got != 2 {
		t.Fatalf("scoped invalidation events = %d, want 2", got)
	}
	mustExec(t, db, ordersSQL)
	if got := planCacheHits.Value() - hits0; got != 2 {
		t.Fatalf("orders plan did not survive CREATE INDEX on lineitem (hits delta %d)", got)
	}

	// CREATE TABLE changes the whole-schema view (plans compiled before
	// the table existed may now resolve differently): full invalidation.
	mustExec(t, db, `CREATE TABLE another (y INT)`)
	if got := planCacheInvalFull.Value() - full0; got != 1 {
		t.Fatalf("full invalidation events = %d, want 1", got)
	}
	res := mustExec(t, db, ordersSQL)
	if len(res.Rows) == 0 {
		t.Fatal("orders query broke after invalidation churn")
	}
}

// TestVersionsMonotonicAcrossDropRecreate guards the serving tier's
// cache keying: the (schema, data) version pair must never repeat, even
// when DROP TABLE erases a table's mutation counter and a re-CREATE
// starts a fresh one.
func TestVersionsMonotonicAcrossDropRecreate(t *testing.T) {
	db := NewDB()
	seen := make(map[[2]uint64]int)
	record := func(step int) {
		s, d := db.Versions()
		k := [2]uint64{s, d}
		if prev, dup := seen[k]; dup {
			t.Fatalf("version pair %v repeated (steps %d and %d)", k, prev, step)
		}
		seen[k] = step
	}
	record(0)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	record(1)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	record(2)
	mustExec(t, db, `INSERT INTO t VALUES (2)`)
	record(3)
	if !db.DropTable("t") {
		t.Fatal("drop failed")
	}
	record(4)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	record(5)
	mustExec(t, db, `INSERT INTO t VALUES (3)`)
	record(6)
}

// TestPlanCacheEviction bounds the cache: past capacity the least
// recently used entry goes first, and a lookup refreshes recency.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("q%d", i)
		if i == 2 {
			c.lookup("q0") // refresh q0 so q1 is the LRU victim
		}
		c.store(&planEntry{key: key})
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if c.lookup("q1") != nil {
		t.Fatal("LRU victim q1 still cached")
	}
	if c.lookup("q0") == nil || c.lookup("q2") == nil {
		t.Fatal("recently used entries evicted")
	}
	c.invalidate()
	if c.len() != 0 {
		t.Fatalf("len after invalidate = %d", c.len())
	}
}

// TestPlanCacheConcurrentWithDDL hammers the cache from concurrent
// readers while DDL churn invalidates it; run under -race this is the
// lock-order and data-race check for the compiled hot path.
func TestPlanCacheConcurrentWithDDL(t *testing.T) {
	if !CompileEnabled() {
		t.Skip("compiled layer disabled")
	}
	db := testDB(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sql := fmt.Sprintf(`SELECT o_orderkey FROM orders WHERE o_custkey = %d`, i%5)
				if _, err := db.Query(sql); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("churn%d", i)
			if _, err := db.Exec(fmt.Sprintf(`CREATE TABLE %s (x INT)`, name)); err != nil {
				t.Errorf("churn create: %v", err)
				return
			}
			db.DropTable(name)
		}
	}()
	wg.Wait()
}
