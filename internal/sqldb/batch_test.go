package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bestpeer/internal/sqlval"
)

// Three-way differential fuzzing for the vectorized executor: the
// tree-walking interpreter, the row-at-a-time compiled closures, and
// the batch-at-a-time vector path must agree on every result row (in
// order) and on the Stats record. The interpreter remains the oracle;
// the row-compiled path is the bridge that localizes a disagreement to
// either the closure compiler or the vectorizer.

// setModes flips the global execution switches and restores the
// previous values when the test finishes.
func setModes(t *testing.T, compile, batch bool) {
	t.Helper()
	prevC, prevB := CompileEnabled(), BatchEnabled()
	t.Cleanup(func() {
		SetCompileEnabled(prevC)
		SetBatchEnabled(prevB)
	})
	SetCompileEnabled(compile)
	SetBatchEnabled(batch)
}

// batchFuzzRows generates one deterministic data set for the fact
// table: enough rows that batches straddle the 1024-row boundary, with
// NULLs sprinkled through every column kind.
func batchFuzzRows(rng *rand.Rand, n int) []sqlval.Row {
	rows := make([]sqlval.Row, 0, n)
	for i := 0; i < n; i++ {
		row := sqlval.Row{
			sqlval.Int(int64(i)),                            // f_id
			sqlval.Int(int64(rng.Intn(40))),                 // f_dim
			sqlval.Float(float64(rng.Intn(20000))/100 - 50), // f_price
			sqlval.Float(float64(rng.Intn(50)) / 100),       // f_disc
			sqlval.Date(int64(10000 + rng.Intn(500))),       // f_date
			sqlval.Str(fmt.Sprintf("tag%d", rng.Intn(6))),   // f_tag
		}
		// NULL one non-key column on ~1/6 of rows.
		if rng.Intn(6) == 0 {
			row[1+rng.Intn(5)] = sqlval.Null()
		}
		rows = append(rows, row)
	}
	return rows
}

// batchFuzzDB builds one database instance loaded with the shared data
// set: a fact table large enough to straddle batch boundaries, a small
// dimension table, and a range index the cost model can pick.
func batchFuzzDB(t *testing.T, facts []sqlval.Row) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE fact (f_id INT PRIMARY KEY, f_dim INT, f_price FLOAT, f_disc FLOAT, f_date DATE, f_tag STRING)`)
	mustExec(t, db, `CREATE TABLE dim (d_id INT PRIMARY KEY, d_name STRING, d_rank INT)`)
	mustExec(t, db, `CREATE INDEX idx_fact_date ON fact (f_date)`)
	for _, r := range facts {
		row := make(sqlval.Row, len(r))
		copy(row, r)
		if err := db.InsertRow("fact", row); err != nil {
			t.Fatalf("InsertRow fact: %v", err)
		}
	}
	for i := 0; i < 40; i++ {
		name := sqlval.Str(fmt.Sprintf("dim%d", i%7))
		if i%9 == 0 {
			name = sqlval.Null()
		}
		if err := db.InsertRow("dim", sqlval.Row{sqlval.Int(int64(i)), name, sqlval.Int(int64(i % 4))}); err != nil {
			t.Fatalf("InsertRow dim: %v", err)
		}
	}
	return db
}

// randomBatchStatement renders shapes that exercise the vector kernels:
// multi-conjunct date-range filters (the fig-6 Q1 shape), float
// arithmetic aggregates (the Q2 shape), IN/BETWEEN/IS NULL predicates,
// string compares, joins with residuals, and grouped aggregation.
func randomBatchStatement(rng *rand.Rand) string {
	day := func() string {
		return fmt.Sprintf("DATE '%s'", sqlval.Date(int64(10000+rng.Intn(500))).String())
	}
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	op := func() string { return ops[rng.Intn(len(ops))] }
	switch rng.Intn(10) {
	case 0: // fig-6 Q1 shape: conjunctive range filter
		return fmt.Sprintf("SELECT f_id, f_price FROM fact WHERE f_date >= %s AND f_date < %s AND f_price > %d AND f_disc <= 0.%02d",
			day(), day(), rng.Intn(100)-50, rng.Intn(99))
	case 1: // fig-6 Q2 shape: arithmetic aggregate under a date filter
		return fmt.Sprintf("SELECT SUM(f_price * (1 - f_disc)), COUNT(*) FROM fact WHERE f_date < %s", day())
	case 2: // index-friendly equality and range probes
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("SELECT * FROM fact WHERE f_id = %d", rng.Intn(1400))
		}
		return fmt.Sprintf("SELECT f_id FROM fact WHERE f_date %s %s", op(), day())
	case 3: // IN list over ints and strings
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("SELECT COUNT(*) FROM fact WHERE f_dim IN (%d, %d, %d)",
				rng.Intn(40), rng.Intn(40), rng.Intn(40))
		}
		return fmt.Sprintf("SELECT f_id FROM fact WHERE f_tag NOT IN ('tag0', 'tag%d') AND f_id < %d",
			rng.Intn(6), rng.Intn(1400))
	case 4: // BETWEEN with NOT and NULL-aware IS NULL
		return fmt.Sprintf("SELECT COUNT(f_dim), COUNT(*) FROM fact WHERE f_price BETWEEN %d AND %d OR f_tag IS NULL",
			rng.Intn(50)-50, rng.Intn(150))
	case 5: // string compare plus date-vs-string coercion
		return fmt.Sprintf("SELECT f_id FROM fact WHERE f_tag %s 'tag%d' AND f_date > '%s'",
			op(), rng.Intn(6), sqlval.Date(int64(10000+rng.Intn(500))).String())
	case 6: // join with residual filter and projection arithmetic
		return fmt.Sprintf("SELECT f.f_id, d.d_name, f.f_price * 2 FROM fact f, dim d "+
			"WHERE f.f_dim = d.d_id AND d.d_rank %s %d AND f.f_price > %d",
			op(), rng.Intn(4), rng.Intn(100)-50)
	case 7: // grouped aggregate over the join
		q := "SELECT d.d_rank, COUNT(*), SUM(f.f_price), MIN(f.f_date), MAX(f.f_dim), AVG(f.f_disc) " +
			"FROM fact f, dim d WHERE f.f_dim = d.d_id GROUP BY d.d_rank ORDER BY d.d_rank"
		if rng.Intn(2) == 0 {
			q = fmt.Sprintf("SELECT f_dim, SUM(f_price * (1 - f_disc)) FROM fact WHERE f_date < %s GROUP BY f_dim HAVING COUNT(*) > %d ORDER BY f_dim",
				day(), rng.Intn(4))
		}
		return q
	case 8: // arithmetic projection with unary minus and division
		return fmt.Sprintf("SELECT f_id, -f_price, f_price / %d + f_disc FROM fact WHERE f_id BETWEEN %d AND %d ORDER BY f_id",
			rng.Intn(7)+1, rng.Intn(1400), rng.Intn(1400))
	default: // distinct/order/limit over floats
		return fmt.Sprintf("SELECT DISTINCT f_dim FROM fact WHERE f_price %s %d ORDER BY f_dim DESC LIMIT %d",
			op(), rng.Intn(60)-30, rng.Intn(12)+1)
	}
}

// TestStatementsThreeWayDifferential runs random statements through all
// three execution modes against identical databases. Every pair must
// agree on rows, order, and Stats.
func TestStatementsThreeWayDifferential(t *testing.T) {
	setModes(t, true, true)
	rng := rand.New(rand.NewSource(20260808))
	facts := batchFuzzRows(rng, 1500)
	interp := batchFuzzDB(t, facts)
	rowc := batchFuzzDB(t, facts)
	batch := batchFuzzDB(t, facts)
	for trial := 0; trial < 200; trial++ {
		sql := randomBatchStatement(rng)
		SetCompileEnabled(false)
		SetBatchEnabled(false)
		iRes, iErr := interp.Query(sql)
		SetCompileEnabled(true)
		rRes, rErr := rowc.Query(sql)
		SetBatchEnabled(true)
		bRes, bErr := batch.Query(sql)
		if !sameError(iErr, rErr) || !sameError(iErr, bErr) {
			t.Fatalf("trial %d: %q: interp err %v, row err %v, batch err %v", trial, sql, iErr, rErr, bErr)
		}
		if iErr != nil {
			continue
		}
		if rowsKey(iRes) != rowsKey(rRes) {
			t.Fatalf("trial %d: %q rows differ (interp vs row-compiled)\ninterp:\n%srow:\n%s",
				trial, sql, rowsKey(iRes), rowsKey(rRes))
		}
		if rowsKey(iRes) != rowsKey(bRes) {
			t.Fatalf("trial %d: %q rows differ (interp vs batch)\ninterp:\n%sbatch:\n%s",
				trial, sql, rowsKey(iRes), rowsKey(bRes))
		}
		if iRes.Stats != rRes.Stats || iRes.Stats != bRes.Stats {
			t.Fatalf("trial %d: %q stats differ: interp %+v, row %+v, batch %+v",
				trial, sql, iRes.Stats, rRes.Stats, bRes.Stats)
		}
	}
}

// mustQuery2 runs sql with batch on and off and requires identical rows
// and Stats, returning the batch-mode result for further checks.
func mustQuery2(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	SetBatchEnabled(false)
	want, err := db.Query(sql)
	if err != nil {
		t.Fatalf("row mode %q: %v", sql, err)
	}
	SetBatchEnabled(true)
	got, err := db.Query(sql)
	if err != nil {
		t.Fatalf("batch mode %q: %v", sql, err)
	}
	if rowsKey(want) != rowsKey(got) {
		t.Fatalf("%q rows differ\nrow:\n%sbatch:\n%s", sql, rowsKey(want), rowsKey(got))
	}
	if want.Stats != got.Stats {
		t.Fatalf("%q stats differ: row %+v, batch %+v", sql, want.Stats, got.Stats)
	}
	return got
}

// TestBatchEmptyTable drives the vector path over zero rows: scans,
// filters, global and grouped aggregates must all shape correctly with
// no batches produced.
func TestBatchEmptyTable(t *testing.T) {
	setModes(t, true, true)
	db := NewDB()
	mustExec(t, db, `CREATE TABLE e (a INT, b FLOAT, c DATE)`)
	res := mustQuery2(t, db, `SELECT a, b FROM e WHERE a > 0`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
	res = mustQuery2(t, db, `SELECT COUNT(*), SUM(b), MIN(c) FROM e`)
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 0 || !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Fatalf("empty aggregate = %v, want 0, NULL, NULL", res.Rows[0])
	}
	res = mustQuery2(t, db, `SELECT a, COUNT(*) FROM e GROUP BY a`)
	if len(res.Rows) != 0 {
		t.Fatalf("grouped rows = %d, want 0", len(res.Rows))
	}
}

// TestBatchAllRowsFiltered exercises selection bitmaps that come up
// empty on every batch: the filter drops all 1500 rows.
func TestBatchAllRowsFiltered(t *testing.T) {
	setModes(t, true, true)
	rng := rand.New(rand.NewSource(7))
	db := batchFuzzDB(t, batchFuzzRows(rng, 1500))
	res := mustQuery2(t, db, `SELECT f_id FROM fact WHERE f_id < 0`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
	res = mustQuery2(t, db, `SELECT SUM(f_price), COUNT(*) FROM fact WHERE f_dim > 1000`)
	if !res.Rows[0][0].IsNull() || res.Rows[0][1].AsInt() != 0 {
		t.Fatalf("filtered-out aggregate = %v, want NULL, 0", res.Rows[0])
	}
}

// TestBatchBoundaryStraddle pins exact results for data sets that
// straddle the 1024-row batch boundary: full batches, a partial tail,
// and filters whose qualifying rows cross the boundary.
func TestBatchBoundaryStraddle(t *testing.T) {
	setModes(t, true, true)
	db := NewDB()
	mustExec(t, db, `CREATE TABLE seq (id INT PRIMARY KEY, v INT)`)
	const n = 2600 // 2 full batches + 552-row tail
	for i := 0; i < n; i++ {
		if err := db.InsertRow("seq", sqlval.Row{sqlval.Int(int64(i)), sqlval.Int(int64(i % 10))}); err != nil {
			t.Fatalf("InsertRow: %v", err)
		}
	}
	res := mustQuery2(t, db, `SELECT COUNT(*), SUM(id) FROM seq`)
	if got := res.Rows[0][0].AsInt(); got != n {
		t.Fatalf("COUNT(*) = %d, want %d", got, n)
	}
	if got := res.Rows[0][1].AsInt(); got != int64(n)*(n-1)/2 {
		t.Fatalf("SUM(id) = %d, want %d", got, int64(n)*(n-1)/2)
	}
	// Qualifying rows 1020..1030 straddle the first boundary.
	res = mustQuery2(t, db, `SELECT id FROM seq WHERE id BETWEEN 1020 AND 1030 ORDER BY id`)
	if len(res.Rows) != 11 || res.Rows[0][0].AsInt() != 1020 || res.Rows[10][0].AsInt() != 1030 {
		t.Fatalf("straddle filter = %d rows (%v..%v)", len(res.Rows), res.Rows[0][0], res.Rows[len(res.Rows)-1][0])
	}
	// Exactly one batch worth of qualifying rows.
	res = mustQuery2(t, db, `SELECT COUNT(*) FROM seq WHERE id < 1024`)
	if got := res.Rows[0][0].AsInt(); got != 1024 {
		t.Fatalf("COUNT(id<1024) = %d, want 1024", got)
	}
}

// TestBatchNullHandling pins three-valued logic through the vector
// kernels: NULL operands in filters, aggregates, and join keys.
func TestBatchNullHandling(t *testing.T) {
	setModes(t, true, true)
	db := NewDB()
	mustExec(t, db, `CREATE TABLE nt (id INT, x INT, s STRING)`)
	for i := 0; i < 1100; i++ {
		x, s := sqlval.Int(int64(i%7)), sqlval.Str(fmt.Sprintf("v%d", i%3))
		if i%5 == 0 {
			x = sqlval.Null()
		}
		if i%4 == 0 {
			s = sqlval.Null()
		}
		if err := db.InsertRow("nt", sqlval.Row{sqlval.Int(int64(i)), sqlval.Value(x), sqlval.Value(s)}); err != nil {
			t.Fatalf("InsertRow: %v", err)
		}
	}
	// NULL comparisons are unknown, so neither x > 3 nor NOT (x > 3)
	// admits a NULL row: the two counts partition the non-NULL rows.
	a := mustQuery2(t, db, `SELECT COUNT(*) FROM nt WHERE x > 3`).Rows[0][0].AsInt()
	b := mustQuery2(t, db, `SELECT COUNT(*) FROM nt WHERE NOT (x > 3)`).Rows[0][0].AsInt()
	nn := mustQuery2(t, db, `SELECT COUNT(x) FROM nt`).Rows[0][0].AsInt()
	if a+b != nn {
		t.Fatalf("NULL partition broken: %d + %d != %d non-null", a, b, nn)
	}
	if nn != 1100-220 {
		t.Fatalf("COUNT(x) = %d, want %d", nn, 1100-220)
	}
	res := mustQuery2(t, db, `SELECT COUNT(*) FROM nt WHERE s IS NULL`)
	if got := res.Rows[0][0].AsInt(); got != 275 {
		t.Fatalf("IS NULL count = %d, want 275", got)
	}
	// NULL never matches IN lists; NOT IN over a NULL subject is unknown.
	res = mustQuery2(t, db, `SELECT COUNT(*) FROM nt WHERE x IN (1, 2) OR x NOT IN (0, 3)`)
	if res.Rows[0][0].AsInt() == 0 {
		t.Fatal("IN/NOT IN over NULLs returned nothing")
	}
	// Grouped aggregate keyed by a NULL-bearing column: NULL forms its
	// own group in GROUP BY.
	res = mustQuery2(t, db, `SELECT x, COUNT(*), SUM(id) FROM nt GROUP BY x ORDER BY x`)
	if len(res.Rows) != 8 { // 7 values + the NULL group
		t.Fatalf("groups = %d, want 8", len(res.Rows))
	}
}

// TestExplainSelect checks the EXPLAIN surface: join order, access
// path, and estimated vs actual cardinalities for a compiled join.
func TestExplainSelect(t *testing.T) {
	setModes(t, true, true)
	db := testDB(t)
	ep, err := db.ExplainSelect(`SELECT o.o_orderkey, l.l_quantity FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND l.l_shipdate >= DATE '1998-02-01'`)
	if err != nil {
		t.Fatalf("ExplainSelect: %v", err)
	}
	if !ep.Compiled || !ep.Batch {
		t.Fatalf("plan not on the batch path: %+v", ep)
	}
	if len(ep.Scans) != 2 || len(ep.JoinOrder) != 2 {
		t.Fatalf("scans = %d, join order = %v", len(ep.Scans), ep.JoinOrder)
	}
	for _, s := range ep.Scans {
		if s.ActualRows < 0 {
			t.Fatalf("scan %s: actual rows not measured", s.Table)
		}
		if s.EstRows < 0 {
			t.Fatalf("scan %s: negative estimate", s.Table)
		}
	}
	text := ep.Render()
	for _, want := range []string{"join order:", "vectorized batch", "est=", "actual="} {
		if !strings.Contains(text, want) {
			t.Fatalf("Render missing %q:\n%s", want, text)
		}
	}
	// Non-SELECT and unparsable statements are rejected, not rendered.
	if _, err := db.ExplainSelect(`DELETE FROM orders`); err == nil {
		t.Fatal("ExplainSelect accepted a DELETE")
	}
}
