// Package sqldb is the embedded relational engine hosted by every
// BestPeer++ peer. It stands in for the MySQL instance each normal peer
// runs in the paper (and the PostgreSQL instance each HadoopDB worker
// runs): peers push SQL subqueries to it, it answers them using primary
// and secondary B+-tree indexes, and it reports scan statistics that the
// virtual-time cost model charges for.
//
// The engine supports the subset of SQL the paper's workloads need:
// CREATE TABLE / CREATE INDEX / INSERT / UPDATE / DELETE and SELECT with
// multi-table joins, WHERE predicates, GROUP BY aggregation, ORDER BY,
// and LIMIT.
package sqldb

import (
	"fmt"
	"strings"

	"bestpeer/internal/sqlval"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Kind sqlval.Kind
}

// Schema describes a table: ordered columns plus an optional primary key.
type Schema struct {
	Table      string
	Columns    []Column
	PrimaryKey string // name of the primary-key column; "" if none
}

// ColumnIndex returns the ordinal of the named column, or -1. Matching
// is case-insensitive, as in MySQL.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Table: s.Table, PrimaryKey: s.PrimaryKey}
	out.Columns = append([]Column(nil), s.Columns...)
	return out
}

// validate checks structural invariants of the schema.
func (s *Schema) validate() error {
	if s.Table == "" {
		return fmt.Errorf("sqldb: schema with empty table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("sqldb: table %s has no columns", s.Table)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("sqldb: table %s: duplicate column %s", s.Table, c.Name)
		}
		seen[lc] = true
	}
	if s.PrimaryKey != "" && s.ColumnIndex(s.PrimaryKey) < 0 {
		return fmt.Errorf("sqldb: table %s: primary key %s is not a column", s.Table, s.PrimaryKey)
	}
	return nil
}
