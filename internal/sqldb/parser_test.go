package sqldb

import (
	"strings"
	"testing"

	"bestpeer/internal/sqlval"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE orders (
		o_orderkey INT PRIMARY KEY,
		o_custkey INT,
		o_totalprice DECIMAL(15,2),
		o_orderdate DATE,
		o_comment VARCHAR(79)
	)`).(*CreateTableStmt)
	s := stmt.Schema
	if s.Table != "orders" || len(s.Columns) != 5 {
		t.Fatalf("schema = %+v", s)
	}
	if s.PrimaryKey != "o_orderkey" {
		t.Errorf("primary key = %q", s.PrimaryKey)
	}
	wantKinds := []sqlval.Kind{sqlval.KindInt, sqlval.KindInt, sqlval.KindFloat, sqlval.KindDate, sqlval.KindString}
	for i, k := range wantKinds {
		if s.Columns[i].Kind != k {
			t.Errorf("column %d kind = %v, want %v", i, s.Columns[i].Kind, k)
		}
	}
}

func TestParseCreateTableTrailingPrimaryKey(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE t (a INT, b INT, PRIMARY KEY (b))`).(*CreateTableStmt)
	if stmt.Schema.PrimaryKey != "b" {
		t.Errorf("primary key = %q", stmt.Schema.PrimaryKey)
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt := mustParse(t, `CREATE INDEX idx_ship ON lineitem (l_shipdate)`).(*CreateIndexStmt)
	if stmt.Name != "idx_ship" || stmt.Table != "lineitem" || stmt.Column != "l_shipdate" || stmt.Unique {
		t.Errorf("stmt = %+v", stmt)
	}
	u := mustParse(t, `CREATE UNIQUE INDEX pk ON t (a)`).(*CreateIndexStmt)
	if !u.Unique {
		t.Error("UNIQUE not parsed")
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b''c', DATE '2001-02-03')`).(*InsertStmt)
	if len(stmt.Rows) != 2 || len(stmt.Rows[0]) != 3 {
		t.Fatalf("rows = %+v", stmt.Rows)
	}
	if lit := stmt.Rows[1][1].(*Literal); lit.Val.AsString() != "b'c" {
		t.Errorf("escaped string = %q", lit.Val.AsString())
	}
	if lit := stmt.Rows[1][2].(*Literal); lit.Val.Kind() != sqlval.KindDate {
		t.Errorf("date literal kind = %v", lit.Val.Kind())
	}
}

func TestParseSelectBasic(t *testing.T) {
	stmt := mustParse(t, `SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_shipdate > DATE '1998-11-05' AND l_commitdate < DATE '1998-11-12'`).(*SelectStmt)
	if len(stmt.Items) != 2 || len(stmt.From) != 1 || stmt.From[0].Table != "lineitem" {
		t.Fatalf("stmt = %+v", stmt)
	}
	conj := Conjuncts(stmt.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
}

func TestParseSelectJoinOnFoldsIntoWhere(t *testing.T) {
	stmt := mustParse(t, `SELECT o.o_orderkey FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey WHERE o.o_totalprice > 100`).(*SelectStmt)
	if len(stmt.From) != 2 {
		t.Fatalf("from = %+v", stmt.From)
	}
	if stmt.From[0].Alias != "l" || stmt.From[1].Alias != "o" {
		t.Errorf("aliases = %+v", stmt.From)
	}
	if got := len(Conjuncts(stmt.Where)); got != 2 {
		t.Errorf("conjuncts = %d (ON should fold into WHERE)", got)
	}
}

func TestParseSelectCommaJoin(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM a, b, c WHERE a.x = b.y AND b.z = c.w`).(*SelectStmt)
	if len(stmt.From) != 3 {
		t.Fatalf("from = %+v", stmt.From)
	}
	if !stmt.Items[0].Star {
		t.Error("star not parsed")
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT p_type, SUM(ps_supplycost) AS total FROM part, partsupp
		WHERE p_partkey = ps_partkey GROUP BY p_type HAVING SUM(ps_supplycost) > 10
		ORDER BY total DESC, p_type ASC LIMIT 5`).(*SelectStmt)
	if len(stmt.GroupBy) != 1 || stmt.Having == nil || len(stmt.OrderBy) != 2 || stmt.Limit != 5 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Error("order direction wrong")
	}
	if stmt.Items[1].Alias != "total" {
		t.Errorf("alias = %q", stmt.Items[1].Alias)
	}
}

func TestParseAggregateCalls(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*), AVG(x), MIN(y), MAX(y), SUM(x*y) FROM t`).(*SelectStmt)
	if len(stmt.Items) != 5 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if fc := stmt.Items[0].Expr.(*FuncCall); !fc.Star || fc.Name != "COUNT" {
		t.Errorf("COUNT(*) = %+v", fc)
	}
	if !HasAggregate(stmt.Items[4].Expr) {
		t.Error("SUM(x*y) not detected as aggregate")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT a + b * c FROM t`).(*SelectStmt)
	bin := stmt.Items[0].Expr.(*Binary)
	if bin.Op != "+" {
		t.Fatalf("top op = %s", bin.Op)
	}
	if inner := bin.R.(*Binary); inner.Op != "*" {
		t.Errorf("inner op = %s", inner.Op)
	}
}

func TestParseAndOrPrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3`).(*SelectStmt)
	or := stmt.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("top = %s", or.Op)
	}
	if and := or.R.(*Binary); and.Op != "AND" {
		t.Errorf("right = %s", and.Op)
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN ('x','y') AND c NOT IN (3) AND d NOT BETWEEN 5 AND 6`).(*SelectStmt)
	conj := Conjuncts(stmt.Where)
	if len(conj) != 4 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if b := conj[0].(*Between); b.Not {
		t.Error("BETWEEN marked NOT")
	}
	if in := conj[2].(*InList); !in.Not {
		t.Error("NOT IN not marked")
	}
	if b := conj[3].(*Between); !b.Not {
		t.Error("NOT BETWEEN not marked")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt := mustParse(t, `SELECT -5, -2.5, -x FROM t`).(*SelectStmt)
	if lit := stmt.Items[0].Expr.(*Literal); lit.Val.AsInt() != -5 {
		t.Errorf("neg int = %v", lit.Val)
	}
	if lit := stmt.Items[1].Expr.(*Literal); lit.Val.AsFloat() != -2.5 {
		t.Errorf("neg float = %v", lit.Val)
	}
	if _, ok := stmt.Items[2].Expr.(*Unary); !ok {
		t.Error("-x not unary")
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	del := mustParse(t, `DELETE FROM t WHERE a = 1`).(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	up := mustParse(t, `UPDATE t SET a = 2, b = b + 1 WHERE c < 5`).(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"INSERT INTO t VALUES 1",
		"CREATE TABLE t",
		"SELECT 'unterminated FROM t",
		"SELECT * FROM t; SELECT * FROM u",
		"SELECT a # b FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Rendering a parsed expression and re-parsing it must preserve
	// the structure: the engines rely on this when shipping subqueries.
	sqls := []string{
		`SELECT a FROM t WHERE (a = 1 AND b > 2.5) OR c = 'x''y'`,
		`SELECT SUM(a * (1 - b)) FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1995-01-01'`,
		`SELECT a FROM t WHERE b IN (1, 2, 3) AND NOT c = 4`,
	}
	for _, sql := range sqls {
		stmt1 := mustParse(t, sql).(*SelectStmt)
		rendered := "SELECT x FROM t WHERE " + stmt1.Where.String()
		stmt2 := mustParse(t, rendered).(*SelectStmt)
		if stmt1.Where.String() != stmt2.Where.String() {
			t.Errorf("round trip mismatch:\n%s\n%s", stmt1.Where.String(), stmt2.Where.String())
		}
	}
}

func TestConjunctsAndAll(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3`).(*SelectStmt)
	conj := Conjuncts(stmt.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	back := AndAll(conj)
	if len(Conjuncts(back)) != 3 {
		t.Error("AndAll/Conjuncts not inverse")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) != nil")
	}
}

func TestColumnsIn(t *testing.T) {
	e := mustParse(t, `SELECT * FROM t WHERE a.x + b.y * z > 0`).(*SelectStmt).Where
	cols := ColumnsIn(e)
	if len(cols) != 3 {
		t.Fatalf("columns = %d", len(cols))
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.String()
	}
	joined := strings.Join(names, ",")
	if joined != "a.x,b.y,z" {
		t.Errorf("columns = %s", joined)
	}
}

func TestParseSelectDistinctIgnored(t *testing.T) {
	stmt := mustParse(t, `SELECT DISTINCT a FROM t`).(*SelectStmt)
	if len(stmt.Items) != 1 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
}

func TestParseQualifiedStar(t *testing.T) {
	stmt := mustParse(t, `SELECT l.*, o.o_orderkey FROM lineitem l, orders o`).(*SelectStmt)
	if !stmt.Items[0].Star || stmt.Items[0].Table != "l" {
		t.Errorf("qualified star = %+v", stmt.Items[0])
	}
}
