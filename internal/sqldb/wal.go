package sqldb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"

	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// Write-ahead log with group commit (ROADMAP item 4). Every mutation
// against a WAL-enabled database — row DML and DDL alike — appends one
// typed, per-table-versioned record. Records accumulate in a pending
// buffer and are committed in groups (the group-commit window): a
// simulated crash loses exactly the uncommitted tail, and ReplayWAL
// reconstructs table contents, indexes, and DB.Versions() bit-identically
// from the committed prefix (StateFingerprint checks this in the chaos
// suite).
//
// The same record stream doubles as a change-data-capture feed: the ERP
// production systems (internal/erp) tail their WAL through Since, and
// the loader's incremental mode consumes those ordered deltas instead of
// rescanning whole tables.

// RecordKind types one WAL record.
type RecordKind uint8

const (
	RecInsert RecordKind = iota
	RecDelete
	RecUpdate
	RecCreateTable
	RecCreateIndex
	RecDropTable
)

// String names the kind for telemetry labels and rendering.
func (k RecordKind) String() string {
	switch k {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecUpdate:
		return "update"
	case RecCreateTable:
		return "create_table"
	case RecCreateIndex:
		return "create_index"
	case RecDropTable:
		return "drop_table"
	default:
		return "unknown"
	}
}

// IsDML reports whether the record is a row mutation (vs DDL). The CDC
// consumers only act on DML.
func (k RecordKind) IsDML() bool {
	return k == RecInsert || k == RecDelete || k == RecUpdate
}

// WALRecord is one typed log record. Row images are shared with the
// table's storage (rows are immutable once stored), so appending a
// record allocates no row copies.
type WALRecord struct {
	// Seq is the record's position in the log, 1-based and gapless.
	Seq uint64
	// Kind types the record.
	Kind RecordKind
	// Table is the affected table's lowercased name.
	Table string
	// RowID is the affected row's ID (DML records).
	RowID int
	// Row is the new row image (insert/update).
	Row sqlval.Row
	// Old is the pre-image (delete/update); the CDC consumers need it to
	// locate the corresponding downstream tuple.
	Old sqlval.Row
	// TableVer is the table's mutation count after applying this record:
	// the per-table data version that rides every delta. Replay verifies
	// it; the serving result cache keys entries on it.
	TableVer uint64
	// Schema is the created table's schema (RecCreateTable).
	Schema *Schema
	// Index definition (RecCreateIndex).
	IxName   string
	IxColumn string
	IxUnique bool
	// Bump records whether the DDL bumped the database schema version
	// (the SQL CREATE INDEX path does; a direct Table.CreateIndex does
	// not), so replay reproduces Versions() exactly.
	Bump bool
}

// WALConfig sizes a write-ahead log.
type WALConfig struct {
	// Path is the backing file ("" = in-memory only; the ERP change
	// feeds run memory-only, crash recovery wants a file).
	Path string
	// GroupSize is the group-commit window: pending records are
	// committed together once this many accumulate (default 32; 1 =
	// commit every record immediately).
	GroupSize int
	// Keep bounds the committed records retained in memory for the
	// change feed (default 65536; <0 = unbounded, required for
	// ReplayRecords on a memory-only WAL).
	Keep int
}

func (c WALConfig) withDefaults() WALConfig {
	if c.GroupSize <= 0 {
		c.GroupSize = 32
	}
	if c.Keep == 0 {
		c.Keep = 1 << 16
	}
	return c
}

var (
	walRecordCounters = map[RecordKind]*telemetry.Counter{}
	walGroupCommits   = telemetry.Default.Counter("sqldb_wal_group_commits_total")
	walBatchCommits   = telemetry.Default.Counter("sqldb_wal_batches_total")
	walRollbacks      = telemetry.Default.Counter("sqldb_wal_rollbacks_total")
)

func init() {
	for _, k := range []RecordKind{RecInsert, RecDelete, RecUpdate, RecCreateTable, RecCreateIndex, RecDropTable} {
		walRecordCounters[k] = telemetry.Default.Counter("sqldb_wal_records_total", telemetry.L("kind", k.String()))
	}
	telemetry.Default.SetHelp("sqldb_wal_records_total", "WAL records appended, by record kind.")
	telemetry.Default.SetHelp("sqldb_wal_group_commits_total", "WAL group commits (pending buffer flushes).")
	telemetry.Default.SetHelp("sqldb_wal_batches_total", "Atomic mutation batches committed to the WAL.")
	telemetry.Default.SetHelp("sqldb_wal_rollbacks_total", "Atomic mutation batches rolled back before reaching the WAL.")
}

// WAL is one database's write-ahead log. It is internally locked:
// appends may come from any goroutine holding the owning database's
// write path.
type WAL struct {
	mu  sync.Mutex
	cfg WALConfig

	f *os.File
	w *bufio.Writer
	e *gob.Encoder

	seq       uint64 // last assigned sequence number
	committed uint64 // last group-committed sequence number

	// tail holds appended records not yet dropped by retention:
	// committed history (bounded by Keep) followed by the pending,
	// uncommitted suffix. firstSeq is tail[0]'s sequence number.
	tail     []WALRecord
	firstSeq uint64

	crashed bool
	closed  bool
}

func newWAL(cfg WALConfig) (*WAL, error) {
	cfg = cfg.withDefaults()
	w := &WAL{cfg: cfg, firstSeq: 1}
	if cfg.Path != "" {
		f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("sqldb: wal: %w", err)
		}
		w.f = f
		w.w = bufio.NewWriter(f)
		w.e = gob.NewEncoder(w.w)
	}
	return w, nil
}

// append logs one record, assigning its sequence number, and group-
// commits when the pending window fills.
func (w *WAL) append(rec WALRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLocked(rec)
	w.maybeFlushLocked()
}

// appendBatch logs an atomic batch: all records are appended before the
// group-commit policy runs, so a flush never splits the batch from the
// records that precede it in the pending buffer.
func (w *WAL) appendBatch(recs []WALRecord) {
	if len(recs) == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rec := range recs {
		w.appendLocked(rec)
	}
	walBatchCommits.Inc()
	w.maybeFlushLocked()
}

func (w *WAL) appendLocked(rec WALRecord) {
	if w.crashed || w.closed {
		return
	}
	w.seq++
	rec.Seq = w.seq
	w.tail = append(w.tail, rec)
	walRecordCounters[rec.Kind].Inc()
}

func (w *WAL) maybeFlushLocked() {
	if int(w.seq-w.committed) >= w.cfg.GroupSize {
		w.flushLocked()
	}
}

// Flush forces a group commit of every pending record.
func (w *WAL) Flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
}

func (w *WAL) flushLocked() {
	if w.committed == w.seq || w.crashed || w.closed {
		return
	}
	if w.e != nil {
		// Encode the pending suffix as one group; the trailing Flush is
		// the simulated fsync that makes the group durable.
		start := int(w.committed - w.firstSeq + 1)
		for _, rec := range w.tail[start:] {
			if err := w.e.Encode(rec); err != nil {
				panic(fmt.Sprintf("sqldb: wal encode: %v", err))
			}
		}
		if err := w.w.Flush(); err != nil {
			panic(fmt.Sprintf("sqldb: wal flush: %v", err))
		}
	}
	w.committed = w.seq
	walGroupCommits.Inc()
	w.trimLocked()
}

// trimLocked enforces the in-memory retention bound over committed
// records; pending records are never trimmed.
func (w *WAL) trimLocked() {
	if w.cfg.Keep < 0 {
		return
	}
	kept := int(w.committed - w.firstSeq + 1)
	if kept <= w.cfg.Keep {
		return
	}
	drop := kept - w.cfg.Keep
	w.tail = append(w.tail[:0:0], w.tail[drop:]...)
	w.firstSeq += uint64(drop)
}

// Truncate drops retained records with Seq <= upTo (a CDC consumer's
// acknowledgement). Pending records and the backing file are untouched.
func (w *WAL) Truncate(upTo uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if upTo > w.committed {
		upTo = w.committed
	}
	if upTo < w.firstSeq {
		return
	}
	drop := int(upTo - w.firstSeq + 1)
	w.tail = append(w.tail[:0:0], w.tail[drop:]...)
	w.firstSeq = upTo + 1
}

// Seq returns the last assigned sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// CommittedSeq returns the last group-committed sequence number: the
// crash-recovery horizon.
func (w *WAL) CommittedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.committed
}

// Since returns a copy of every retained record with Seq > seq, in
// order. ok is false when retention has dropped records the caller has
// not seen (seq+1 < the first retained sequence): the consumer must
// fall back to a full resync.
func (w *WAL) Since(seq uint64) (recs []WALRecord, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq+1 < w.firstSeq {
		return nil, false
	}
	if seq >= w.seq {
		return nil, true
	}
	start := int(seq - w.firstSeq + 1)
	return append([]WALRecord(nil), w.tail[start:]...), true
}

// CommittedRecords returns the full committed history retained in
// memory. It errors when retention has dropped the head of the log (use
// a file-backed WAL, or Keep < 0, for replay).
func (w *WAL) CommittedRecords() ([]WALRecord, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.firstSeq != 1 {
		return nil, fmt.Errorf("sqldb: wal: records before seq %d no longer retained", w.firstSeq)
	}
	n := int(w.committed)
	return append([]WALRecord(nil), w.tail[:n]...), nil
}

// Crash simulates a process crash: every record not yet group-committed
// is lost, the backing file stops at the last committed group, and the
// log accepts no further appends. Recovery is ReplayWALFile (or
// ReplayRecords over CommittedRecords).
func (w *WAL) Crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.crashed = true
	w.tail = w.tail[:int(w.committed-w.firstSeq+1)]
	w.seq = w.committed
	if w.f != nil {
		w.f.Close()
		w.f = nil
		w.e = nil
	}
}

// Close flushes pending records and releases the backing file.
func (w *WAL) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	w.closed = true
	if w.f != nil {
		w.f.Close()
		w.f = nil
		w.e = nil
	}
}

// ReadWALFile decodes every record of a WAL file, in order.
func ReadWALFile(path string) ([]WALRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sqldb: wal: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(bufio.NewReader(f))
	var out []WALRecord
	for {
		var rec WALRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("sqldb: wal decode at record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}

// ReplayRecords reconstructs a database from a WAL record prefix. The
// result is bit-identical to the source database at the moment the last
// replayed record committed: same table contents and row IDs, same
// index contents, same Versions() pair (StateFingerprint agrees).
func ReplayRecords(records []WALRecord) (*DB, error) {
	db := NewDB()
	var want uint64 = 1
	for _, rec := range records {
		if rec.Seq != want {
			return nil, fmt.Errorf("sqldb: wal replay: gap at seq %d (want %d)", rec.Seq, want)
		}
		want++
		if err := db.applyRecord(rec); err != nil {
			return nil, fmt.Errorf("sqldb: wal replay seq %d (%s %s): %w", rec.Seq, rec.Kind, rec.Table, err)
		}
	}
	return db, nil
}

// ReplayWALFile reconstructs a database from a file-backed WAL: the
// crash-recovery path.
func ReplayWALFile(path string) (*DB, error) {
	recs, err := ReadWALFile(path)
	if err != nil {
		return nil, err
	}
	return ReplayRecords(recs)
}

// applyRecord applies one replayed record through the same code paths
// the live database used, verifying row IDs and per-table versions.
func (db *DB) applyRecord(rec WALRecord) error {
	switch rec.Kind {
	case RecCreateTable:
		if rec.Schema == nil {
			return fmt.Errorf("create_table record without schema")
		}
		_, err := db.CreateTable(rec.Schema)
		return err
	case RecDropTable:
		if !db.DropTable(rec.Table) {
			return fmt.Errorf("dropping absent table")
		}
		return nil
	case RecCreateIndex:
		db.mu.Lock()
		defer db.mu.Unlock()
		t := db.table(rec.Table)
		if t == nil {
			return fmt.Errorf("unknown table")
		}
		if err := t.createIndexRaw(rec.IxName, rec.IxColumn, rec.IxUnique); err != nil {
			return err
		}
		if rec.Bump {
			db.bumpSchemaScopedLocked(rec.Table)
		}
		return nil
	}

	// DML record.
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.table(rec.Table)
	if t == nil {
		return fmt.Errorf("unknown table")
	}
	switch rec.Kind {
	case RecInsert:
		id, err := t.insertRaw(rec.Row)
		if err != nil {
			return err
		}
		if id != rec.RowID {
			return fmt.Errorf("replayed insert landed at row %d, logged %d", id, rec.RowID)
		}
	case RecDelete:
		if !t.deleteRaw(rec.RowID) {
			return fmt.Errorf("replayed delete of absent row %d", rec.RowID)
		}
	case RecUpdate:
		if err := t.updateRaw(rec.RowID, rec.Row); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	if t.muts != rec.TableVer {
		return fmt.Errorf("table version diverged: replayed %d, logged %d", t.muts, rec.TableVer)
	}
	return nil
}

// StateFingerprint hashes the database's full logical state: every
// table's schema, row storage (live rows and tombstone positions, in
// row-ID order), every index's complete key-to-rows mapping, and the
// (schema, data) version pair. Two databases with equal fingerprints
// answer every query and every index lookup identically — the
// bit-identity check behind the WAL crash-recovery property.
func (db *DB) StateFingerprint() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := fnv.New64a()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		fmt.Fprintf(h, "table %s|", name)
		for _, c := range t.schema.Columns {
			fmt.Fprintf(h, "col %s %d|", c.Name, c.Kind)
		}
		fmt.Fprintf(h, "pk %s|rows %d|", t.schema.PrimaryKey, len(t.rows))
		for id, row := range t.rows {
			if row == nil {
				fmt.Fprintf(h, "%d -|", id)
				continue
			}
			fmt.Fprintf(h, "%d %s|", id, row.String())
		}
		ixNames := make([]string, 0, len(t.indexes))
		for n := range t.indexes {
			ixNames = append(ixNames, n)
		}
		sort.Strings(ixNames)
		for _, n := range ixNames {
			idx := t.indexes[n]
			fmt.Fprintf(h, "index %s %s %v|", idx.Name, idx.Column, idx.unique)
			idx.tree.Ascend(func(key sqlval.Value, v interface{}) bool {
				fmt.Fprintf(h, "%s=%v|", key.String(), v.([]int))
				return true
			})
		}
	}
	sv, dv := db.ver, db.droppedMuts
	for _, t := range db.tables {
		dv += t.muts
	}
	fmt.Fprintf(h, "versions %d %d", sv, dv)
	return h.Sum64()
}
