package sqldb

import (
	"fmt"
	"strings"

	"bestpeer/internal/sqlval"
)

// This file exports the pieces of the local executor that the
// distributed query engines (BestPeer++'s basic/parallel/MapReduce
// engines and the HadoopDB baseline) reuse: name resolution over joined
// rows, conjunct placement, equi-join key extraction, and final
// projection/aggregation over rows fetched from remote peers.

// Binding names one table occurrence inside a joined-row layout.
type Binding struct {
	Alias  string
	Schema *Schema
}

func frameOf(bindings []Binding) *frame {
	f := &frame{}
	for _, b := range bindings {
		f.push(b.Alias, b.Schema)
	}
	return f
}

// EvalExprOver evaluates a non-aggregate expression against a joined row
// laid out by bindings.
func EvalExprOver(bindings []Binding, e Expr, row sqlval.Row) (sqlval.Value, error) {
	return evalExpr(frameOf(bindings), e, row)
}

// EvalPredicate evaluates e as a predicate over a joined row (SQL
// unknown is false).
func EvalPredicate(bindings []Binding, e Expr, row sqlval.Row) (bool, error) {
	return evalPred(frameOf(bindings), e, row)
}

// Resolvable reports whether every column of e resolves in the bindings.
func Resolvable(bindings []Binding, e Expr) bool {
	return frameOf(bindings).resolvable(e)
}

// ProjectRows applies the SELECT list, grouping/aggregation, HAVING,
// ORDER BY, and LIMIT of stmt to already-joined, already-filtered rows.
// The engines call it at the query submitting peer after assembling the
// distributed intermediate result. When the compiled layer is enabled
// the projection compiles once and loops over rows with resolved
// offsets; otherwise (or when compilation fails) it tree-walks per row
// as before.
func ProjectRows(stmt *SelectStmt, bindings []Binding, rows []sqlval.Row) (*Result, error) {
	f := frameOf(bindings)
	if CompileEnabled() {
		if pp, err := newProjPlan(f, f, stmt); err == nil {
			return pp.runRows(rows)
		}
	}
	return project(f, f, stmt, rows)
}

// CompiledExpr is a closure-compiled expression over a joined row
// layout: column references are resolved to offsets once at compile
// time instead of per row.
type CompiledExpr func(row sqlval.Row) (sqlval.Value, error)

// CompiledPred is a closure-compiled predicate; SQL unknown is false.
type CompiledPred func(row sqlval.Row) (bool, error)

// CompileExprOver compiles e for repeated evaluation over rows laid out
// by bindings. It never fails: when the compiled layer is disabled or
// the expression does not compile (unknown column, aggregate outside
// context), the returned closure tree-walks via the interpreter and
// reproduces its per-row errors exactly.
func CompileExprOver(bindings []Binding, e Expr) CompiledExpr {
	f := frameOf(bindings)
	if CompileEnabled() {
		if fn, err := compileExpr(f, e); err == nil {
			return CompiledExpr(fn)
		}
	}
	return func(row sqlval.Row) (sqlval.Value, error) { return evalExpr(f, e, row) }
}

// CompilePredicates fuses conds into one compiled conjunction over the
// bindings' row layout; rows failing any conjunct are rejected. Like
// CompileExprOver it never fails, falling back to the interpreter.
func CompilePredicates(bindings []Binding, conds []Expr) CompiledPred {
	f := frameOf(bindings)
	if CompileEnabled() {
		if fn, err := compileFilter(f, conds); err == nil {
			if fn == nil {
				return func(sqlval.Row) (bool, error) { return true, nil }
			}
			return CompiledPred(fn)
		}
	}
	return func(row sqlval.Row) (bool, error) {
		for _, c := range conds {
			ok, err := evalPred(f, c, row)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
}

// CompileJoinKey compiles a row's join-key column set once, returning
// the key hasher (same scheme as JoinKeyHash) plus per-key evaluators
// for equality checks. Falls back to interpreter closures when the
// compiled layer is off or compilation fails.
func CompileJoinKey(bindings []Binding, keys []Expr) (hash func(sqlval.Row) (uint64, error), evals []CompiledExpr) {
	f := frameOf(bindings)
	if CompileEnabled() {
		if fns, err := compileExprs(f, keys); err == nil {
			evals = make([]CompiledExpr, len(fns))
			for i, fn := range fns {
				evals[i] = CompiledExpr(fn)
			}
			return compileHash(fns), evals
		}
	}
	evals = make([]CompiledExpr, len(keys))
	for i, k := range keys {
		k := k
		evals[i] = func(row sqlval.Row) (sqlval.Value, error) { return evalExpr(f, k, row) }
	}
	return func(row sqlval.Row) (uint64, error) { return hashKey(f, keys, row) }, evals
}

// JoinKeyOffsets resolves join keys to plain column offsets over the
// bindings' row layout. It succeeds only when every key is a bare column
// reference — the common foreign-key join shape — letting callers hash
// and compare by direct row indexing with no closure dispatch and no
// per-key error path. ok=false means at least one key is a computed
// expression; callers keep the compiled-closure path.
func JoinKeyOffsets(bindings []Binding, keys []Expr) (offs []int, ok bool) {
	if len(keys) == 0 {
		return nil, false
	}
	f := frameOf(bindings)
	offs = make([]int, len(keys))
	for i, k := range keys {
		cr, isRef := k.(*ColumnRef)
		if !isRef {
			return nil, false
		}
		off, err := f.resolve(cr)
		if err != nil {
			return nil, false
		}
		offs[i] = off
	}
	return offs, true
}

// HashKeyOffsets folds the key columns at offs with the same scheme as
// JoinKeyHash, so offset-resolved and expression-evaluated keys hash
// identically.
func HashKeyOffsets(row sqlval.Row, offs []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, off := range offs {
		h = h*1099511628211 ^ row[off].Hash()
	}
	return h
}

// SplitConjunctsPerTable partitions WHERE conjuncts into per-table
// filters (fully resolvable against one FROM entry) and cross-table
// conditions, in FROM order.
func SplitConjunctsPerTable(where Expr, refs []TableRef, schemas []*Schema) (perTable [][]Expr, cross []Expr) {
	return splitConjuncts(where, refs, schemas)
}

// EquiJoinConds finds equality conjuncts linking the left bindings to
// the right bindings, returning paired key expressions (left side,
// right side) plus the conditions it could not use.
func EquiJoinConds(conds []Expr, left, right []Binding) (lkeys, rkeys []Expr, rest []Expr) {
	return equiJoinKeys(conds, frameOf(left), frameOf(right))
}

// JoinKeyHash hashes a row's join key for hash-partitioned shuffles and
// hash joins; rows with equal keys hash equally.
func JoinKeyHash(bindings []Binding, keys []Expr, row sqlval.Row) (uint64, error) {
	return hashKey(frameOf(bindings), keys, row)
}

// JoinKeysEqual compares two rows' join keys; NULL keys never match.
func JoinKeysEqual(lb []Binding, lkeys []Expr, lrow sqlval.Row, rb []Binding, rkeys []Expr, rrow sqlval.Row) (bool, error) {
	return keysEqual(frameOf(lb), lkeys, lrow, frameOf(rb), rkeys, rrow)
}

// NeededColumns lists the columns of one FROM entry referenced anywhere
// in the statement (select list, WHERE, GROUP BY, HAVING, ORDER BY).
// The engines push exactly this projection down to data owner peers. A
// star select returns every column.
func NeededColumns(stmt *SelectStmt, ref TableRef, schema *Schema) []string {
	all := func() []string { return schema.ColumnNames() }
	needed := make(map[string]bool)
	addRef := func(cr *ColumnRef) bool {
		if cr.Table != "" && !strings.EqualFold(cr.Table, ref.Alias) {
			return true
		}
		ci := schema.ColumnIndex(cr.Column)
		if ci < 0 {
			// Unqualified reference to a column of another table.
			if cr.Table == "" {
				return true
			}
			return false
		}
		needed[strings.ToLower(schema.Columns[ci].Name)] = true
		return true
	}
	var exprs []Expr
	for _, item := range stmt.Items {
		if item.Star && (item.Table == "" || strings.EqualFold(item.Table, ref.Alias)) {
			return all()
		}
		if !item.Star {
			exprs = append(exprs, item.Expr)
		}
	}
	exprs = append(exprs, stmt.Where, stmt.Having)
	exprs = append(exprs, stmt.GroupBy...)
	for _, o := range stmt.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		for _, cr := range ColumnsIn(e) {
			if !addRef(cr) {
				return all()
			}
		}
	}
	out := make([]string, 0, len(needed))
	for _, c := range schema.Columns {
		if needed[strings.ToLower(c.Name)] {
			out = append(out, c.Name)
		}
	}
	return out
}

// SubSchema builds the reduced schema produced by projecting the listed
// columns of a table (the shape of a pushed-down subquery result).
func SubSchema(schema *Schema, columns []string) (*Schema, error) {
	out := &Schema{Table: schema.Table}
	for _, c := range columns {
		ci := schema.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: no column %s in %s", c, schema.Table)
		}
		out.Columns = append(out.Columns, schema.Columns[ci])
	}
	return out, nil
}

// BuildSubQuery constructs the single-table SELECT pushed down to a data
// owner peer: the needed columns of one table under its per-table
// conjuncts.
func BuildSubQuery(table TableRef, columns []string, conjuncts []Expr) *SelectStmt {
	stmt := &SelectStmt{
		From:  []TableRef{{Table: table.Table, Alias: table.Table}},
		Where: AndAll(stripQualifiers(conjuncts, table.Alias)),
		Limit: -1,
	}
	for _, c := range columns {
		stmt.Items = append(stmt.Items, SelectItem{Expr: &ColumnRef{Column: c}})
	}
	return stmt
}

// stripQualifiers rewrites alias-qualified column references to bare
// ones so a subquery extracted from a join parses at a peer that only
// sees the single table.
func stripQualifiers(conjuncts []Expr, alias string) []Expr {
	out := make([]Expr, 0, len(conjuncts))
	for _, c := range conjuncts {
		out = append(out, rewriteRefs(c, func(cr *ColumnRef) Expr {
			if strings.EqualFold(cr.Table, alias) {
				return &ColumnRef{Column: cr.Column}
			}
			return cr
		}))
	}
	return out
}

// rewriteRefs rebuilds an expression applying fn to every column
// reference.
func rewriteRefs(e Expr, fn func(*ColumnRef) Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		return fn(x)
	case *Literal:
		return x
	case *Binary:
		return &Binary{Op: x.Op, L: rewriteRefs(x.L, fn), R: rewriteRefs(x.R, fn)}
	case *Unary:
		return &Unary{Op: x.Op, E: rewriteRefs(x.E, fn)}
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteRefs(a, fn))
		}
		return out
	case *Between:
		return &Between{E: rewriteRefs(x.E, fn), Lo: rewriteRefs(x.Lo, fn), Hi: rewriteRefs(x.Hi, fn), Not: x.Not}
	case *InList:
		out := &InList{E: rewriteRefs(x.E, fn), Not: x.Not}
		for _, v := range x.List {
			out.List = append(out.List, rewriteRefs(v, fn))
		}
		return out
	case *IsNull:
		return &IsNull{E: rewriteRefs(x.E, fn), Not: x.Not}
	default:
		return e
	}
}

// RewriteRefs exposes expression rewriting to the engines (used by
// aggregate decomposition).
func RewriteRefs(e Expr, fn func(*ColumnRef) Expr) Expr { return rewriteRefs(e, fn) }
