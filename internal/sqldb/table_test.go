package sqldb

import (
	"testing"

	"bestpeer/internal/sqlval"
)

func smallSchema() *Schema {
	return &Schema{
		Table:      "t",
		PrimaryKey: "id",
		Columns: []Column{
			{Name: "id", Kind: sqlval.KindInt},
			{Name: "v", Kind: sqlval.KindString},
			{Name: "f", Kind: sqlval.KindFloat},
		},
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(&Schema{}); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewTable(&Schema{Table: "t"}); err == nil {
		t.Error("no-column schema accepted")
	}
	if _, err := NewTable(&Schema{Table: "t", Columns: []Column{{Name: "a"}, {Name: "A"}}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTable(&Schema{Table: "t", Columns: []Column{{Name: "a"}}, PrimaryKey: "zz"}); err == nil {
		t.Error("phantom primary key accepted")
	}
}

func TestTableInsertWidthAndCoercion(t *testing.T) {
	tbl, err := NewTable(smallSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(sqlval.Row{sqlval.Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	// Int stored into float column widens; float into int truncates.
	id, err := tbl.Insert(sqlval.Row{sqlval.Float(7.9), sqlval.Str("x"), sqlval.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Row(id)
	if row[0].Kind() != sqlval.KindInt || row[0].AsInt() != 7 {
		t.Errorf("narrowed id = %v (%v)", row[0], row[0].Kind())
	}
	if row[2].Kind() != sqlval.KindFloat || row[2].AsFloat() != 3 {
		t.Errorf("widened f = %v", row[2])
	}
	// A date column accepts strings and ints; a string column accepts
	// anything via rendering.
	dt, err := NewTable(&Schema{Table: "d", Columns: []Column{{Name: "d", Kind: sqlval.KindDate}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Insert(sqlval.Row{sqlval.Str("2001-05-06")}); err != nil {
		t.Errorf("date string rejected: %v", err)
	}
	if _, err := dt.Insert(sqlval.Row{sqlval.Str("garbage")}); err == nil {
		t.Error("garbage date accepted")
	}
	if _, err := dt.Insert(sqlval.Row{sqlval.Float(1.5)}); err == nil {
		t.Error("float date accepted")
	}
}

func TestUniqueInsertRollsBackIndexEntries(t *testing.T) {
	tbl, err := NewTable(smallSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("by_v", "v", false); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(sqlval.Row{sqlval.Int(1), sqlval.Str("a"), sqlval.Float(0)}); err != nil {
		t.Fatal(err)
	}
	// Duplicate primary key: the insert fails and must not leave a
	// stray secondary-index entry behind.
	if _, err := tbl.Insert(sqlval.Row{sqlval.Int(1), sqlval.Str("ghost"), sqlval.Float(0)}); err == nil {
		t.Fatal("duplicate pk accepted")
	}
	if ids := tbl.IndexOn("v").Lookup(sqlval.Str("ghost")); len(ids) != 0 {
		t.Errorf("stray index entry after failed insert: %v", ids)
	}
	if tbl.NumRows() != 1 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
}

func TestUpdateRestoresIndexOnConflict(t *testing.T) {
	tbl, err := NewTable(smallSchema())
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := tbl.Insert(sqlval.Row{sqlval.Int(1), sqlval.Str("a"), sqlval.Float(0)})
	if _, err := tbl.Insert(sqlval.Row{sqlval.Int(2), sqlval.Str("b"), sqlval.Float(0)}); err != nil {
		t.Fatal(err)
	}
	// Updating row 1's primary key to collide with row 2 must fail and
	// keep row 1 findable under its old key.
	err = tbl.Update(id1, sqlval.Row{sqlval.Int(2), sqlval.Str("a"), sqlval.Float(0)})
	if err == nil {
		t.Fatal("conflicting update accepted")
	}
	if ids := tbl.IndexOn("id").Lookup(sqlval.Int(1)); len(ids) != 1 {
		t.Errorf("row 1 lost from primary index: %v", ids)
	}
	if err := tbl.Update(999, sqlval.Row{sqlval.Int(9), sqlval.Str("x"), sqlval.Float(0)}); err == nil {
		t.Error("update of absent row accepted")
	}
}

func TestDeleteBookkeeping(t *testing.T) {
	tbl, _ := NewTable(smallSchema())
	id, _ := tbl.Insert(sqlval.Row{sqlval.Int(1), sqlval.Str("a"), sqlval.Float(0)})
	before := tbl.DataBytes()
	if before <= 0 {
		t.Fatal("no bytes tracked")
	}
	if !tbl.Delete(id) {
		t.Fatal("delete failed")
	}
	if tbl.Delete(id) {
		t.Error("double delete succeeded")
	}
	if tbl.Delete(-1) || tbl.Delete(999) {
		t.Error("out-of-range delete succeeded")
	}
	if tbl.DataBytes() != 0 || tbl.NumRows() != 0 {
		t.Errorf("bookkeeping after delete: %d bytes, %d rows", tbl.DataBytes(), tbl.NumRows())
	}
	if tbl.Row(id) != nil {
		t.Error("tombstoned row still visible")
	}
}

func TestCreateIndexErrors(t *testing.T) {
	tbl, _ := NewTable(smallSchema())
	if err := tbl.CreateIndex("x", "ghost", false); err == nil {
		t.Error("index on ghost column accepted")
	}
	if err := tbl.CreateIndex("primary", "v", false); err == nil {
		t.Error("duplicate index name accepted")
	}
	// Building an index over existing data with a uniqueness violation
	// fails.
	tbl.Insert(sqlval.Row{sqlval.Int(1), sqlval.Str("dup"), sqlval.Float(0)})
	tbl.Insert(sqlval.Row{sqlval.Int(2), sqlval.Str("dup"), sqlval.Float(0)})
	if err := tbl.CreateIndex("uniq_v", "v", true); err == nil {
		t.Error("unique index over duplicates accepted")
	}
	if len(tbl.Indexes()) != 1 {
		t.Errorf("indexes = %d", len(tbl.Indexes()))
	}
}

func TestIndexPrefersUnique(t *testing.T) {
	tbl, _ := NewTable(smallSchema())
	if err := tbl.CreateIndex("v_nonuniq", "v", false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("v_uniq", "v", true); err != nil {
		t.Fatal(err)
	}
	idx := tbl.IndexOn("v")
	if idx == nil || idx.Name != "v_uniq" {
		t.Errorf("IndexOn picked %+v, want the unique index", idx)
	}
}

func TestLexerEdgeCases(t *testing.T) {
	bad := []string{
		`SELECT 'unterminated`,
		`SELECT a ~ b FROM t`,
		`CREATE TABLE t (a VARCHAR(10`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded", sql)
		}
	}
	// Doubled quotes escape; leading-dot floats parse.
	stmt, err := ParseSelect(`SELECT 'it''s', .5 FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if lit := stmt.Items[0].Expr.(*Literal); lit.Val.AsString() != "it's" {
		t.Errorf("escaped quote = %q", lit.Val.AsString())
	}
	if lit := stmt.Items[1].Expr.(*Literal); lit.Val.AsFloat() != 0.5 {
		t.Errorf("leading-dot float = %v", lit.Val)
	}
}

func TestUpdateConflictRestoresAllIndexes(t *testing.T) {
	tbl, err := NewTable(smallSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("by_v", "v", false); err != nil {
		t.Fatal(err)
	}
	id1, _ := tbl.Insert(sqlval.Row{sqlval.Int(1), sqlval.Str("a"), sqlval.Float(0)})
	tbl.Insert(sqlval.Row{sqlval.Int(2), sqlval.Str("b"), sqlval.Float(0)})
	// The update changes BOTH indexed columns but conflicts on the
	// primary key; every index must be restored to the old row.
	if err := tbl.Update(id1, sqlval.Row{sqlval.Int(2), sqlval.Str("zzz"), sqlval.Float(0)}); err == nil {
		t.Fatal("conflicting update accepted")
	}
	if ids := tbl.IndexOn("v").Lookup(sqlval.Str("a")); len(ids) != 1 {
		t.Errorf("old secondary entry lost: %v", ids)
	}
	if ids := tbl.IndexOn("v").Lookup(sqlval.Str("zzz")); len(ids) != 0 {
		t.Errorf("new secondary entry leaked: %v", ids)
	}
	if ids := tbl.IndexOn("id").Lookup(sqlval.Int(1)); len(ids) != 1 {
		t.Errorf("primary entry lost: %v", ids)
	}
}
