package mapreduce

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bestpeer/internal/dfs"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/vtime"
)

func testCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	var dns []string
	for i := 0; i < workers; i++ {
		dns = append(dns, fmt.Sprintf("w%d", i))
	}
	fs, err := dfs.New(dfs.Config{BlockSizeBytes: 1 << 20, Replication: 1, Datanodes: dns})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(fs, workers, vtime.DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func splitOf(src string, vals ...int64) Split {
	s := Split{Source: src}
	for _, v := range vals {
		row := sqlval.Row{sqlval.Int(v)}
		s.Rows = append(s.Rows, row)
		s.Bytes += int64(row.EncodedSize())
	}
	return s
}

func TestWordCountStyleJob(t *testing.T) {
	c := testCluster(t, 4)
	job := Job{
		Name: "count-mod3",
		Map: func(_ string, row sqlval.Row) ([]KV, error) {
			return []KV{{Key: sqlval.Int(row[0].AsInt() % 3), Row: sqlval.Row{sqlval.Int(1)}}}, nil
		},
		Reduce: func(key sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) {
			var n int64
			for range rows {
				n++
			}
			return []sqlval.Row{{key, sqlval.Int(n)}}, nil
		},
		Splits: []Split{splitOf("a", 0, 1, 2, 3, 4, 5), splitOf("b", 6, 7, 8)},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int64{}
	for _, r := range res.Rows {
		counts[r[0].AsInt()] = r[1].AsInt()
	}
	if counts[0] != 3 || counts[1] != 3 || counts[2] != 3 {
		t.Errorf("counts = %v", counts)
	}
	if res.MapTasks != 2 || res.ReduceTasks != 4 {
		t.Errorf("tasks = %d/%d", res.MapTasks, res.ReduceTasks)
	}
	if res.MapOutputBytes == 0 || res.ShuffleBytes == 0 {
		t.Errorf("bytes = %+v", res)
	}
}

func TestStartupCostChargedOncePerJob(t *testing.T) {
	c := testCluster(t, 2)
	job := Job{Name: "tiny", Splits: []Split{splitOf("a", 1)}}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	r := vtime.DefaultRates()
	if res.Cost.Startup != r.MRJobStartup {
		t.Errorf("startup = %v, want %v (map-only: no pull delay)", res.Cost.Startup, r.MRJobStartup)
	}
	if res.Cost.Total() < 10*time.Second {
		t.Errorf("tiny job total %v should be dominated by startup", res.Cost.Total())
	}
}

func TestPullDelayOnlyWithReduce(t *testing.T) {
	c := testCluster(t, 2)
	withReduce := Job{
		Name:   "r",
		Reduce: func(k sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) { return rows, nil },
		Splits: []Split{splitOf("a", 1, 2)},
	}
	res, err := c.Run(withReduce)
	if err != nil {
		t.Fatal(err)
	}
	r := vtime.DefaultRates()
	want := r.MRJobStartup + r.MRPullDelay
	if res.Cost.Startup != want {
		t.Errorf("startup+pull = %v, want %v", res.Cost.Startup, want)
	}
}

func TestMapOnlyJobPreservesOrder(t *testing.T) {
	c := testCluster(t, 2)
	job := Job{Name: "identity", Splits: []Split{splitOf("a", 1, 2), splitOf("b", 3)}}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, want := range []int64{1, 2, 3} {
		if res.Rows[i][0].AsInt() != want {
			t.Errorf("row %d = %v (split order not preserved)", i, res.Rows[i])
		}
	}
}

func TestWaveCostScalesWithTasks(t *testing.T) {
	// 8 equal splits on 2 workers = 4 waves; on 8 workers = 1 wave.
	big := make([]int64, 1000)
	for i := range big {
		big[i] = int64(i)
	}
	mkJob := func() Job {
		var splits []Split
		for s := 0; s < 8; s++ {
			splits = append(splits, splitOf(fmt.Sprintf("s%d", s), big...))
		}
		return Job{Name: "waves", Splits: splits}
	}
	c2 := testCluster(t, 2)
	c8 := testCluster(t, 8)
	r2, err := c2.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := c8.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	slow := r2.Cost.Disk + r2.Cost.CPU
	fast := r8.Cost.Disk + r8.Cost.CPU
	if slow < 3*fast {
		t.Errorf("2-worker work %v not ~4x the 8-worker %v", slow, fast)
	}
}

func TestSymmetricHashJoinJob(t *testing.T) {
	// The join pattern the BestPeer++ MR engine uses (§5.4): map tags
	// rows by source table, shuffle on the join key, reduce joins.
	c := testCluster(t, 3)
	left := Split{Source: "L"}
	for i := int64(0); i < 10; i++ {
		left.Rows = append(left.Rows, sqlval.Row{sqlval.Str("L"), sqlval.Int(i), sqlval.Str(fmt.Sprintf("left-%d", i))})
	}
	right := Split{Source: "R"}
	for i := int64(5); i < 15; i++ {
		right.Rows = append(right.Rows, sqlval.Row{sqlval.Str("R"), sqlval.Int(i), sqlval.Str(fmt.Sprintf("right-%d", i))})
	}
	job := Job{
		Name: "join",
		Map: func(_ string, row sqlval.Row) ([]KV, error) {
			return []KV{{Key: row[1], Row: row}}, nil
		},
		Reduce: func(key sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) {
			var ls, rs []sqlval.Row
			for _, r := range rows {
				if r[0].AsString() == "L" {
					ls = append(ls, r)
				} else {
					rs = append(rs, r)
				}
			}
			var out []sqlval.Row
			for _, l := range ls {
				for _, r := range rs {
					out = append(out, sqlval.Row{key, l[2], r[2]})
				}
			}
			return out, nil
		},
		Splits: []Split{left, right},
	}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // keys 5..9 match
		t.Fatalf("join rows = %d", len(res.Rows))
	}
}

func TestJobOutputToDFS(t *testing.T) {
	c := testCluster(t, 2)
	job := Job{Name: "out", Splits: []Split{splitOf("a", 1, 2, 3)}, Output: "/jobs/out"}
	res, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.FS().Read("/jobs/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || res.OutputBytes == 0 {
		t.Errorf("dfs rows = %d, output bytes = %d", len(rows), res.OutputBytes)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := testCluster(t, 2)
	boom := errors.New("boom")
	job := Job{
		Name:   "failing",
		Map:    func(string, sqlval.Row) ([]KV, error) { return nil, boom },
		Splits: []Split{splitOf("a", 1)},
	}
	if _, err := c.Run(job); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	c := testCluster(t, 2)
	boom := errors.New("red")
	job := Job{
		Name:   "failing",
		Reduce: func(sqlval.Value, []sqlval.Row) ([]sqlval.Row, error) { return nil, boom },
		Splits: []Split{splitOf("a", 1)},
	}
	if _, err := c.Run(job); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 0, vtime.DefaultRates()); err == nil {
		t.Error("zero workers accepted")
	}
	c, err := NewCluster(nil, 2, vtime.DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Job{Name: "x", Splits: []Split{splitOf("a", 1)}, Output: "/x"}); err == nil {
		t.Error("DFS output without file system accepted")
	}
	if c.Workers() != 2 {
		t.Errorf("Workers = %d", c.Workers())
	}
}

// TestJobDeterminism: identical jobs produce byte-identical outputs
// despite concurrent task execution.
func TestJobDeterminism(t *testing.T) {
	run := func() []string {
		c := testCluster(t, 4)
		job := Job{
			Name: "det",
			Map: func(_ string, row sqlval.Row) ([]KV, error) {
				return []KV{{Key: sqlval.Int(row[0].AsInt() % 7), Row: row}}, nil
			},
			Reduce: func(key sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) {
				var sum int64
				for _, r := range rows {
					sum += r[0].AsInt()
				}
				return []sqlval.Row{{key, sqlval.Int(sum)}}, nil
			},
			Splits: []Split{splitOf("a", 1, 2, 3, 4, 5, 6, 7, 8, 9), splitOf("b", 10, 11, 12, 13)},
		}
		res, err := c.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = r.String()
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
