// Package mapreduce is the MapReduce framework BestPeer++ mounts for
// large-scale analytical jobs (paper §5.4) and the substrate of the
// HadoopDB baseline (§6.1.3). It reproduces the structural costs the
// paper's figures hinge on:
//
//   - per-job startup cost: scheduling map tasks on task trackers and
//     launching fresh task processes costs 10–15 s regardless of cluster
//     size (§6.1.6) — charged once per job;
//   - pull-based shuffle: reducers poll for map-completion events and
//     then pull intermediate data, adding a noticeable delay between map
//     completion and reduce start (§6.1.7) — charged once per job with a
//     reduce phase;
//   - wave execution: with one map and one reduce slot per worker, tasks
//     beyond the worker count run in sequential waves.
//
// Jobs execute for real: user map and reduce functions run over actual
// rows (concurrently, capped at the worker count) and produce actual
// outputs, while the job's physical work is charged to the virtual-time
// cost model.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bestpeer/internal/dfs"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/vtime"
)

// KV is one intermediate key/value record.
type KV struct {
	Key sqlval.Value
	Row sqlval.Row
}

// MapFunc transforms one input row into intermediate records. src names
// the split's source (worker or peer ID).
type MapFunc func(src string, row sqlval.Row) ([]KV, error)

// ReduceFunc folds all rows sharing a key into output rows.
type ReduceFunc func(key sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error)

// Split is one map task's input: rows already resident at a source
// (a worker's local database or a DFS partition) plus the number of
// bytes the map task reads to produce them.
type Split struct {
	Source string
	Rows   []sqlval.Row
	Bytes  int64
}

// Job describes one MapReduce job.
type Job struct {
	Name string
	// Map defaults to the identity mapper (key NULL, row unchanged).
	Map MapFunc
	// Reduce nil makes a map-only job: map outputs are the job output
	// and no shuffle happens (e.g. HadoopDB's Q1 plan).
	Reduce ReduceFunc
	// NumReducers defaults to the cluster's worker count (the manual
	// setting the paper applies to HadoopDB's join queries).
	NumReducers int
	// Splits are the map inputs.
	Splits []Split
	// Output, when non-empty, writes the job output to this DFS path.
	Output string
	// Trace is the submitting query's span context; the job and its
	// map/shuffle/reduce phases open spans under it. Zero disables
	// tracing.
	Trace telemetry.SpanContext
}

// Result is a completed job's output and accounting.
type Result struct {
	Rows []sqlval.Row
	Cost vtime.Cost

	MapTasks       int
	ReduceTasks    int
	MapOutputBytes int64
	ShuffleBytes   int64
	OutputBytes    int64
}

// Cluster is a running MapReduce service: a job tracker over worker
// task slots and a DFS for job output.
type Cluster struct {
	fs      *dfs.FileSystem
	workers int
	rates   vtime.Rates
}

// NewCluster creates a cluster with the given worker count (each worker
// contributes one map slot and one reduce slot, per the paper's Hadoop
// configuration).
func NewCluster(fs *dfs.FileSystem, workers int, rates vtime.Rates) (*Cluster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("mapreduce: need at least one worker")
	}
	return &Cluster{fs: fs, workers: workers, rates: rates}, nil
}

// Workers returns the cluster's worker count.
func (c *Cluster) Workers() int { return c.workers }

// FS returns the cluster's file system.
func (c *Cluster) FS() *dfs.FileSystem { return c.fs }

// Run executes one job to completion.
func (c *Cluster) Run(job Job) (*Result, error) {
	jsp := telemetry.StartSpan(job.Trace, "mr-job:"+job.Name,
		telemetry.L("splits", fmt.Sprintf("%d", len(job.Splits))))
	res, err := c.run(job, jsp)
	if err != nil {
		jsp.SetError(err)
	} else {
		jsp.SetVTime(res.Cost.Total())
	}
	jsp.End()
	telemetry.Default.Counter("mapreduce_jobs_total").Inc()
	if err == nil {
		telemetry.Default.Counter("mapreduce_map_tasks_total").Add(int64(res.MapTasks))
		telemetry.Default.Counter("mapreduce_reduce_tasks_total").Add(int64(res.ReduceTasks))
		telemetry.Default.Counter("mapreduce_shuffle_bytes_total").Add(res.ShuffleBytes)
	}
	return res, err
}

func (c *Cluster) run(job Job, jsp *telemetry.Span) (*Result, error) {
	mapFn := job.Map
	if mapFn == nil {
		mapFn = func(_ string, row sqlval.Row) ([]KV, error) {
			return []KV{{Key: sqlval.Null(), Row: row}}, nil
		}
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = c.workers
	}

	res := &Result{MapTasks: len(job.Splits)}
	res.Cost = res.Cost.Add(c.rates.JobStartup(1))
	phaseStart := time.Now()
	msp := jsp.StartChild("map", telemetry.L("tasks", fmt.Sprintf("%d", len(job.Splits))))

	// --- map phase: run tasks concurrently, capped at the worker count.
	type mapOut struct {
		kvs   []KV
		bytes int64
		err   error
	}
	outs := make([]mapOut, len(job.Splits))
	sem := make(chan struct{}, c.workers)
	var wg sync.WaitGroup
	for i, split := range job.Splits {
		wg.Add(1)
		go func(i int, split Split) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var kvs []KV
			var bytes int64
			for _, row := range split.Rows {
				out, err := mapFn(split.Source, row)
				if err != nil {
					outs[i] = mapOut{err: err}
					return
				}
				for _, kv := range out {
					bytes += int64(kv.Row.EncodedSize()) + int64(kv.Key.EncodedSize())
				}
				kvs = append(kvs, out...)
			}
			outs[i] = mapOut{kvs: kvs, bytes: bytes}
		}(i, split)
	}
	wg.Wait()

	// Map cost: waves of parallel tasks; each task reads its split and
	// processes it.
	var waveCosts []vtime.Cost
	var wave vtime.Cost
	for i, split := range job.Splits {
		if outs[i].err != nil {
			err := fmt.Errorf("mapreduce: %s map task %d: %w", job.Name, i, outs[i].err)
			msp.SetError(err)
			msp.End()
			return nil, err
		}
		task := c.rates.DiskRead(split.Bytes).Add(c.rates.CPUWork(split.Bytes))
		wave = vtime.Par(wave, task)
		res.MapOutputBytes += outs[i].bytes
		if (i+1)%c.workers == 0 {
			waveCosts = append(waveCosts, wave)
			wave = vtime.Cost{}
		}
	}
	if wave.Total() > 0 {
		waveCosts = append(waveCosts, wave)
	}
	for _, wc := range waveCosts {
		res.Cost = res.Cost.Add(wc)
	}
	msp.End()
	telemetry.Default.Histogram("mapreduce_phase_seconds", nil, telemetry.L("phase", "map")).
		ObserveDuration(time.Since(phaseStart))

	// --- map-only job: concatenate outputs in split order.
	if job.Reduce == nil {
		for _, o := range outs {
			for _, kv := range o.kvs {
				res.Rows = append(res.Rows, kv.Row)
			}
		}
		return c.finish(job, res)
	}

	// --- shuffle: hash-partition intermediate records across reducers.
	phaseStart = time.Now()
	ssp := jsp.StartChild("shuffle", telemetry.L("reducers", fmt.Sprintf("%d", numReducers)))
	partitions := make([][]KV, numReducers)
	partBytes := make([]int64, numReducers)
	for _, o := range outs {
		for _, kv := range o.kvs {
			p := int(kv.Key.Hash() % uint64(numReducers))
			partitions[p] = append(partitions[p], kv)
			partBytes[p] += int64(kv.Row.EncodedSize()) + int64(kv.Key.EncodedSize())
		}
	}
	var maxPart int64
	for _, b := range partBytes {
		res.ShuffleBytes += b
		if b > maxPart {
			maxPart = b
		}
	}
	// Reducers poll for completion events, then pull their partitions in
	// parallel; the slowest (largest) partition is the critical path.
	res.Cost = res.Cost.Add(c.rates.PullDelay(1)).Add(c.rates.NetTransfer(maxPart))
	ssp.End()
	telemetry.Default.Histogram("mapreduce_phase_seconds", nil, telemetry.L("phase", "shuffle")).
		ObserveDuration(time.Since(phaseStart))

	// --- reduce phase: group each partition by key (sorted for
	// determinism) and fold.
	phaseStart = time.Now()
	rsp := jsp.StartChild("reduce", telemetry.L("tasks", fmt.Sprintf("%d", numReducers)))
	res.ReduceTasks = numReducers
	type redOut struct {
		rows []sqlval.Row
		err  error
	}
	redOuts := make([]redOut, numReducers)
	var rwg sync.WaitGroup
	rsem := make(chan struct{}, c.workers)
	for p := 0; p < numReducers; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			rsem <- struct{}{}
			defer func() { <-rsem }()
			part := partitions[p]
			sort.SliceStable(part, func(i, j int) bool {
				return sqlval.Less(part[i].Key, part[j].Key)
			})
			var rows []sqlval.Row
			for i := 0; i < len(part); {
				j := i
				for j < len(part) && sqlval.Equal(part[j].Key, part[i].Key) {
					j++
				}
				group := make([]sqlval.Row, 0, j-i)
				for _, kv := range part[i:j] {
					group = append(group, kv.Row)
				}
				out, err := job.Reduce(part[i].Key, group)
				if err != nil {
					redOuts[p] = redOut{err: err}
					return
				}
				rows = append(rows, out...)
				i = j
			}
			redOuts[p] = redOut{rows: rows}
		}(p)
	}
	rwg.Wait()

	var reduceWave vtime.Cost
	waveCosts = waveCosts[:0]
	for p := 0; p < numReducers; p++ {
		if redOuts[p].err != nil {
			err := fmt.Errorf("mapreduce: %s reduce task %d: %w", job.Name, p, redOuts[p].err)
			rsp.SetError(err)
			rsp.End()
			return nil, err
		}
		task := c.rates.CPUWork(partBytes[p])
		reduceWave = vtime.Par(reduceWave, task)
		if (p+1)%c.workers == 0 {
			waveCosts = append(waveCosts, reduceWave)
			reduceWave = vtime.Cost{}
		}
		res.Rows = append(res.Rows, redOuts[p].rows...)
	}
	if reduceWave.Total() > 0 {
		waveCosts = append(waveCosts, reduceWave)
	}
	for _, wc := range waveCosts {
		res.Cost = res.Cost.Add(wc)
	}
	rsp.End()
	telemetry.Default.Histogram("mapreduce_phase_seconds", nil, telemetry.L("phase", "reduce")).
		ObserveDuration(time.Since(phaseStart))
	return c.finish(job, res)
}

// finish writes job output to DFS (charging the replicated write) and
// totals output bytes.
func (c *Cluster) finish(job Job, res *Result) (*Result, error) {
	for _, row := range res.Rows {
		res.OutputBytes += int64(row.EncodedSize())
	}
	if job.Output != "" {
		if c.fs == nil {
			return nil, fmt.Errorf("mapreduce: job %s requests DFS output but cluster has no file system", job.Name)
		}
		if err := c.fs.Write(job.Output, res.Rows); err != nil {
			return nil, err
		}
		res.Cost = res.Cost.Add(c.rates.DiskRead(res.OutputBytes))
	}
	return res, nil
}
