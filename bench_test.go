package bestpeer_test

// The benchmark targets below regenerate every table and figure of the
// paper's evaluation (§6). Each target runs the corresponding
// experiment from internal/bench and reports the paper's metric —
// virtual-time latency in seconds, or queries/sec — as custom benchmark
// metrics, so `go test -bench=.` prints the series the figures plot.
// cmd/bpbench prints the same results as formatted tables.
//
// Benchmarks run at a reduced default scale (nodes 5/10/20) to stay
// CI-friendly; the virtual-time model makes the reported latencies
// independent of the real wall-clock, so the shapes match the full
// 10/20/50 runs of `bpbench`.

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"bestpeer"

	"bestpeer/internal/bench"
	"bestpeer/internal/engine"
	"bestpeer/internal/peer"
	"bestpeer/internal/tpch"
)

// benchConfig is the scale used by the checked-in benchmark targets.
func benchConfig() bench.Config {
	return bench.Config{Nodes: []int{5, 10, 20}, PerNodeSF: 0.0004, TargetPerNodeBytes: 1e9, Seed: 1}
}

// reportPerformance runs one Fig. 6-10 experiment and reports both
// systems' latencies per cluster size.
func reportPerformance(b *testing.B, run func(bench.Config) (*bench.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		for _, row := range t.Rows {
			nodes := row[0]
			bp, _ := strconv.ParseFloat(row[1], 64)
			hdb, _ := strconv.ParseFloat(row[2], 64)
			b.ReportMetric(bp, "bp_s/"+nodes+"n")
			b.ReportMetric(hdb, "hdb_s/"+nodes+"n")
		}
	}
}

// BenchmarkFig06Q1 regenerates Fig. 6: the Q1 selection benchmark.
func BenchmarkFig06Q1(b *testing.B) { reportPerformance(b, bench.Fig6) }

// BenchmarkFig07Q2 regenerates Fig. 7: the Q2 aggregation benchmark.
func BenchmarkFig07Q2(b *testing.B) { reportPerformance(b, bench.Fig7) }

// BenchmarkFig08Q3 regenerates Fig. 8: the Q3 two-table join benchmark.
func BenchmarkFig08Q3(b *testing.B) { reportPerformance(b, bench.Fig8) }

// BenchmarkFig09Q4 regenerates Fig. 9: the Q4 join+aggregation benchmark.
func BenchmarkFig09Q4(b *testing.B) { reportPerformance(b, bench.Fig9) }

// BenchmarkFig10Q5 regenerates Fig. 10: the Q5 multi-join benchmark.
func BenchmarkFig10Q5(b *testing.B) { reportPerformance(b, bench.Fig10) }

// BenchmarkFig11Adaptive regenerates Fig. 11: Q5 under the P2P engine,
// the MapReduce engine, and the adaptive engine.
func BenchmarkFig11Adaptive(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		for _, row := range t.Rows {
			nodes := row[0]
			p2p, _ := strconv.ParseFloat(row[1], 64)
			mr, _ := strconv.ParseFloat(row[2], 64)
			ad, _ := strconv.ParseFloat(row[3], 64)
			b.ReportMetric(p2p, "p2p_s/"+nodes+"n")
			b.ReportMetric(mr, "mr_s/"+nodes+"n")
			b.ReportMetric(ad, "adapt_s/"+nodes+"n")
		}
	}
}

// BenchmarkFig12Scalability regenerates Fig. 12: throughput vs peers.
func BenchmarkFig12Scalability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		for _, row := range t.Rows {
			nodes := row[0]
			sup, _ := strconv.ParseFloat(row[3], 64)
			ret, _ := strconv.ParseFloat(row[4], 64)
			b.ReportMetric(sup, "sup_qps/"+nodes+"n")
			b.ReportMetric(ret, "ret_qps/"+nodes+"n")
		}
	}
}

// reportCurve runs a Fig. 13/14 latency-vs-throughput experiment and
// reports the peak achieved throughput and its latency.
func reportCurve(b *testing.B, run func(bench.Config) (*bench.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		var peakQPS, latAtPeak float64
		for _, row := range t.Rows {
			qps, _ := strconv.ParseFloat(row[1], 64)
			lat, _ := strconv.ParseFloat(row[2], 64)
			if qps > peakQPS {
				peakQPS, latAtPeak = qps, lat
			}
		}
		b.ReportMetric(peakQPS, "peak_qps")
		b.ReportMetric(latAtPeak, "latency_s@peak")
	}
}

// BenchmarkFig13Supplier regenerates Fig. 13: the light supplier
// workload's latency-vs-throughput curve.
func BenchmarkFig13Supplier(b *testing.B) { reportCurve(b, bench.Fig13) }

// BenchmarkFig14Retailer regenerates Fig. 14: the heavy retailer
// workload's latency-vs-throughput curve.
func BenchmarkFig14Retailer(b *testing.B) { reportCurve(b, bench.Fig14) }

// --- ablation benches (DESIGN.md §4) ---

// ablationNetwork builds one mid-size network for the ablations.
func ablationNetwork(b *testing.B) *bestpeer.Network {
	b.Helper()
	n, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:          8,
		RangeIndexColumns: map[string][]string{tpch.LineItem: {"l_shipdate"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := n.LoadTPCH(0.004); err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkAblationBloomJoin compares bytes shipped with and without
// the bloom-join optimization on a selective join.
func BenchmarkAblationBloomJoin(b *testing.B) {
	n := ablationNetwork(b)
	// Orders carry the selective predicate; LineItem is unfiltered, so
	// the bloom filter built from qualified order keys prunes the
	// LineItem transfer.
	sql := `SELECT o.o_totalprice, l.l_extendedprice
		FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
		WHERE o.o_orderdate > DATE '1998-06-01'`
	b.ResetTimer()
	var withB, withoutB int64
	for i := 0; i < b.N; i++ {
		on, err := n.Query(0, sql, bestpeer.QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		off, err := n.Query(0, sql, bestpeer.QueryOptions{Engine: engine.Options{DisableBloomJoin: true}})
		if err != nil {
			b.Fatal(err)
		}
		withB, withoutB = on.BytesFetched, off.BytesFetched
	}
	b.ReportMetric(float64(withB), "bytes_bloom_on")
	b.ReportMetric(float64(withoutB), "bytes_bloom_off")
}

// BenchmarkAblationSinglePeer compares the single-peer shortcut against
// the full fetch-and-process path on a nation-local query.
func BenchmarkAblationSinglePeer(b *testing.B) {
	n, err := bestpeer.NewNetwork(bestpeer.Config{NumPeers: 2, GlobalSchema: tpch.Schemas(true)})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range n.Peers() {
		sc := tpch.Scale{ScaleFactor: 0.01, Peer: i, NumPeers: 2, NationKey: i, Tables: tpch.SupplierTables()}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			b.Fatal(err)
		}
		if err := p.PublishIndexes(map[string][]string{
			tpch.Supplier: {"s_nationkey"}, tpch.PartSupp: {"ps_nationkey"}, tpch.Part: {"p_nationkey"},
		}); err != nil {
			b.Fatal(err)
		}
	}
	sql := tpch.SupplierQuery(1)
	b.ResetTimer()
	var on, off time.Duration
	for i := 0; i < b.N; i++ {
		r1, err := n.Query(0, sql, bestpeer.QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := n.Query(0, sql, bestpeer.QueryOptions{Engine: engine.Options{DisableSinglePeer: true}})
		if err != nil {
			b.Fatal(err)
		}
		on, off = r1.Cost.Total(), r2.Cost.Total()
	}
	b.ReportMetric(on.Seconds(), "s_opt_on")
	b.ReportMetric(off.Seconds(), "s_opt_off")
}

// BenchmarkAblationIndexCache compares cached index lookups against
// per-query BATON traversal.
func BenchmarkAblationIndexCache(b *testing.B) {
	n := ablationNetwork(b)
	sql := tpch.Q1Default()
	lc := n.Peer(0).Locator()
	if _, err := n.Query(0, sql, bestpeer.QueryOptions{}); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	var cached, uncached time.Duration
	for i := 0; i < b.N; i++ {
		r1, err := n.Query(0, sql, bestpeer.QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		lc.SetCache(false)
		r2, err := n.Query(0, sql, bestpeer.QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		lc.SetCache(true)
		if _, err := n.Query(0, sql, bestpeer.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
		cached, uncached = r1.Cost.Total(), r2.Cost.Total()
	}
	b.ReportMetric(cached.Seconds()*1000, "ms_cached")
	b.ReportMetric(uncached.Seconds()*1000, "ms_uncached")
}

// BenchmarkAblationPushPull compares BestPeer++'s push-based
// intermediate transfer against a simulated pull-based transfer (the
// paper's explanation for the Q2 gap, §6.1.7).
func BenchmarkAblationPushPull(b *testing.B) {
	n := ablationNetwork(b)
	sql := tpch.Q2Default()
	b.ResetTimer()
	var push, pull time.Duration
	for i := 0; i < b.N; i++ {
		r1, err := n.Query(0, sql, bestpeer.QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := n.Query(0, sql, bestpeer.QueryOptions{Engine: engine.Options{SimulatePullTransfer: true}})
		if err != nil {
			b.Fatal(err)
		}
		push, pull = r1.Cost.Total(), r2.Cost.Total()
	}
	b.ReportMetric(push.Seconds(), "s_push")
	b.ReportMetric(pull.Seconds(), "s_pull")
}

// BenchmarkAblationIndexPriority measures how many peers each index
// kind contacts for a range-restricted query (range < column < table).
func BenchmarkAblationIndexPriority(b *testing.B) {
	n, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:          6,
		GlobalSchema:      tpch.Schemas(true),
		RangeIndexColumns: map[string][]string{},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Nation-partitioned data: a nation-key predicate is selective
	// across peers only when the range index is published.
	for i, p := range n.Peers() {
		sc := tpch.Scale{ScaleFactor: 0.006, Peer: i, NumPeers: 6, NationKey: i, Tables: tpch.RetailerTables()}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			b.Fatal(err)
		}
	}
	sql := fmt.Sprintf(`SELECT COUNT(*) FROM orders WHERE o_nationkey = %d`, 3)
	publish := func(rangeIdx bool) {
		cols := map[string][]string{}
		if rangeIdx {
			cols[tpch.Orders] = []string{"o_nationkey"}
		}
		for _, p := range n.Peers() {
			if err := p.PublishIndexes(cols); err != nil {
				b.Fatal(err)
			}
			p.Locator().Invalidate()
		}
	}
	b.ResetTimer()
	var withRange, withoutRange int
	for i := 0; i < b.N; i++ {
		publish(true)
		r1, err := n.Query(0, sql, bestpeer.QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		withRange = len(r1.Peers)
		publish(false)
		r2, err := n.Query(0, sql, bestpeer.QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		withoutRange = len(r2.Peers)
	}
	b.ReportMetric(float64(withRange), "peers_range_idx")
	b.ReportMetric(float64(withoutRange), "peers_column_idx")
}

// BenchmarkFanoutWallClock measures real wall-clock concurrency — the
// one axis the virtual-time benches cannot: 8 data peers each charging
// a 10 ms service delay, fetched sequentially vs through the fan-out
// pool. The JSON line lands in the log so BENCH_fanout.json can track
// the trajectory across PRs.
func BenchmarkFanoutWallClock(b *testing.B) {
	var r *bench.FanoutResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.FanoutWallClock(8, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("fanout: %s", r.JSONLine())
	b.ReportMetric(r.SequentialMS, "seq_ms")
	b.ReportMetric(r.ConcurrentMS, "conc_ms")
	b.ReportMetric(r.Speedup, "speedup_x")
}

// BenchmarkAblationFanout measures the parallel engine's replicated-join
// cost as the processing fan-out (peer count) grows.
func BenchmarkAblationFanout(b *testing.B) {
	for _, peers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			n, err := bestpeer.NewNetwork(bestpeer.Config{NumPeers: peers})
			if err != nil {
				b.Fatal(err)
			}
			if err := n.LoadTPCH(0.0005 * float64(peers)); err != nil {
				b.Fatal(err)
			}
			sql := tpch.Q4Default()
			b.ResetTimer()
			var cost time.Duration
			for i := 0; i < b.N; i++ {
				r, err := n.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyParallel})
				if err != nil {
					b.Fatal(err)
				}
				cost = r.Cost.Total()
			}
			b.ReportMetric(cost.Seconds(), "s_parallel")
		})
	}
}
