# Tier-1 verification gate (see ROADMAP.md): every PR must leave
# `make verify` green.

GO ?= go

.PHONY: verify build fmt vet test race chaos bench fanout bench-telemetry bench-monitor bench-exec bench-faults bench-serving bench-hotspot bench-rebalance bench-ingest cover

verify: build fmt vet race chaos

build:
	$(GO) build ./...

# Formatting gate: gofmt -l prints unformatted files; any output fails.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
	$(GO) vet -structtag -copylocks ./internal/telemetry/ ./internal/pnet/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos regression suite: seeded fault injection against the transport,
# the BATON overlay, the serving tier (shedding under injected backend
# slowness), and the full system (failover on injected faults).
# Deterministic — every fault decision replays from fixed seeds — and
# bounded by the timeout so a reintroduced hang fails instead of
# wedging CI.
chaos:
	$(GO) test -race -count=1 -timeout 120s -run 'TestChaos' ./internal/pnet/ ./internal/baton/ ./internal/serving/ ./internal/sqldb/ .

# Regenerate the paper's figures (virtual-time, deterministic).
bench:
	$(GO) run ./cmd/bpbench

# Wall-clock fan-out comparison; refreshes the trajectory file.
fanout:
	$(GO) run ./cmd/bpbench -fig fanout | tee BENCH_fanout.json

# Wall-clock telemetry instrumentation overhead on the fig-6 workload;
# refreshes the trajectory file. Expected overhead_pct < 2.
bench-telemetry:
	$(GO) run ./cmd/bpbench -fig telemetry | tee BENCH_telemetry.json

# Wall-clock monitoring-plane overhead (reporter loops + bootstrap
# collector) on the fig-6 workload; refreshes the trajectory file.
# Expected overhead_pct < 2.
bench-monitor:
	$(GO) run ./cmd/bpbench -fig monitor | tee BENCH_monitor.json

# Wall-clock speedup of the compile-once execution layer (plan cache +
# closure-compiled expressions + streaming pipeline) over the
# tree-walking interpreter on the fig-6 benchmark queries; refreshes
# the trajectory file. Expected speedup >= 2.
bench-exec:
	$(GO) run ./cmd/bpbench -fig exec | tee BENCH_exec.json

# Wall-clock speedup of the vectorized batch executor (typed column
# vectors + selection bitmaps) over the row-compiled closures on the
# fig-6 benchmark queries; appends to the trajectory file. Expected
# speedup >= 2 with results_identical = true.
bench-batch:
	$(GO) run ./cmd/bpbench -fig batch | tee -a BENCH_exec.json

# Wall-clock overhead of the hardened RPC path (deadline guard + retry
# policy, faults off) over the bare path on the fig-6 workload;
# refreshes the trajectory file. Expected overhead_pct < 2 with
# retries = timeouts = 0.
bench-faults:
	$(GO) run ./cmd/bpbench -fig faults | tee BENCH_faults.json

# Serving-tier saturation: 1k+ real concurrent client sessions against
# a live in-process cluster, result cache off then on; appends to the
# trajectory file. Expected: interactive p99 bounded by the shed budget
# among admitted queries, shed_total > 0 at saturation, and
# cache_speedup > 1 on the repeated-query mix.
bench-serving:
	$(GO) run ./cmd/bpbench -fig serving | tee -a BENCH_serving.json

# Heat-plane acceptance: Zipfian shipdate windows must raise a hotspot
# event, a uniform workload must stay quiet, and the heat plane's
# kill-switch overhead on the fig-6 workload must stay < 2%; refreshes
# the trajectory file. Also runs the mitigation A/B (see
# bench-rebalance below — same figure, same file).
bench-hotspot:
	$(GO) run ./cmd/bpbench -fig hotspot | tee BENCH_hotspot.json

# Heat-response acceptance: the flash-crowd mitigation A/B. Expected:
# mit_on_hot_share near 1/(k+1)=0.33 (vs 1.0 off), mit_on_p99_ms and
# mit_on_qps better than off, results_match = true (replicated reads
# change no answers), armed_quiet = true (the armed daemon fires
# nothing on a uniform workload). Alias of bench-hotspot — the A/B
# lives in the same figure so its arms share the detection networks.
bench-rebalance: bench-hotspot

# Continuous-ingest acceptance: CDC refresh must beat snapshot-diff
# passes at low churn (cdc_speedup > 1) with bit-identical query
# results (results_identical = true), and serving entries over tables
# the ingest never touches must keep hitting while sync rounds race
# the query stream (unrelated_misses stays at the warm-up count).
bench-ingest:
	$(GO) run ./cmd/bpbench -fig ingest | tee BENCH_ingest.json

# Per-package statement coverage (not part of the verify gate; the
# baseline lives in EXPERIMENTS.md).
cover:
	$(GO) test -count=1 -cover ./... | grep -v 'no test files'
