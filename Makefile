# Tier-1 verification gate (see ROADMAP.md): every PR must leave
# `make verify` green.

GO ?= go

.PHONY: verify build fmt vet test race bench fanout bench-telemetry bench-monitor bench-exec

verify: build fmt vet race

build:
	$(GO) build ./...

# Formatting gate: gofmt -l prints unformatted files; any output fails.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
	$(GO) vet -structtag -copylocks ./internal/telemetry/ ./internal/pnet/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the paper's figures (virtual-time, deterministic).
bench:
	$(GO) run ./cmd/bpbench

# Wall-clock fan-out comparison; refreshes the trajectory file.
fanout:
	$(GO) run ./cmd/bpbench -fig fanout | tee BENCH_fanout.json

# Wall-clock telemetry instrumentation overhead on the fig-6 workload;
# refreshes the trajectory file. Expected overhead_pct < 2.
bench-telemetry:
	$(GO) run ./cmd/bpbench -fig telemetry | tee BENCH_telemetry.json

# Wall-clock monitoring-plane overhead (reporter loops + bootstrap
# collector) on the fig-6 workload; refreshes the trajectory file.
# Expected overhead_pct < 2.
bench-monitor:
	$(GO) run ./cmd/bpbench -fig monitor | tee BENCH_monitor.json

# Wall-clock speedup of the compile-once execution layer (plan cache +
# closure-compiled expressions + streaming pipeline) over the
# tree-walking interpreter on the fig-6 benchmark queries; refreshes
# the trajectory file. Expected speedup >= 2.
bench-exec:
	$(GO) run ./cmd/bpbench -fig exec | tee BENCH_exec.json
