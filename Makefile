# Tier-1 verification gate (see ROADMAP.md): every PR must leave
# `make verify` green.

GO ?= go

.PHONY: verify build vet test race bench fanout bench-telemetry

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) vet -structtag -copylocks ./internal/telemetry/ ./internal/pnet/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the paper's figures (virtual-time, deterministic).
bench:
	$(GO) run ./cmd/bpbench

# Wall-clock fan-out comparison; refreshes the trajectory file.
fanout:
	$(GO) run ./cmd/bpbench -fig fanout | tee BENCH_fanout.json

# Wall-clock telemetry instrumentation overhead on the fig-6 workload;
# refreshes the trajectory file. Expected overhead_pct < 2.
bench-telemetry:
	$(GO) run ./cmd/bpbench -fig telemetry | tee BENCH_telemetry.json
