module bestpeer

go 1.22
